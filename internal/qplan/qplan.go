// Package qplan compiles certain-answer computation for C_tract
// settings into direct evaluation plans over the source and target
// instances, skipping chase materialization entirely.
//
// The idea follows the query-rewriting view of "Laconic schema
// mappings": instead of chasing I into a canonical target J_can and
// enumerating image solutions per request, the mapping itself is
// compiled once. Every target atom of a UCQ is unfolded through the
// source-to-target tgds (LAV-style view unfolding) or matched against
// the stored target instance J directly, producing a union of
// source-side conjunctive plans whose evaluation over the indexed
// instances returns exactly the chase-backed certain answers.
//
// # The compilable fragment
//
// Compilation is sound for settings where the canonical target's
// labeled nulls are inert: they can never be forced to constants by the
// target-to-source dependencies. Concretely a setting compiles when
//
//  1. it is in C_tract (Definition 9) — in particular Σt = ∅ and there
//     are no disjunctive target-to-source dependencies, and
//  2. no target-to-source tgd mentions a marked variable (Definition 8)
//     in its head: variables that can bind labeled nulls of J_can never
//     flow into a Σts obligation over the source.
//
// Under (1)+(2), and for null-free instances I and J, whether a Σts
// trigger is satisfied in I depends only on constant bindings, so the
// identity assignment (keep every null fresh) is a solution whenever
// any assignment is. Solution existence therefore compiles to violation
// probes — unfoldings of each Σts body whose distinct head-variable
// rows are checked against I — and certain answers of a UCQ q reduce to
// evaluating the unfolded q over (I, J): for Boolean queries any match
// settles certainty, for open queries exactly the matches whose head
// values are constants survive, so disjuncts that bind a head variable
// to an existential position of an st-tgd are dropped at compile time
// (DESIGN.md §15 gives the full argument).
//
// Settings or instances outside the fragment fall back to the
// enumeration path of package certain with a typed reason, mirroring
// the chase.Fallback* taxonomy.
package qplan

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/certain"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/par"
	"repro/internal/rel"
)

// Fallback reasons explain why the compiled path declined and the
// chase-backed enumeration must run instead. They are stable strings,
// suitable as metric labels.
const (
	// FallbackNone means the compiled path applies.
	FallbackNone = ""
	// FallbackNotCtract: the setting is outside C_tract (Definition 9).
	FallbackNotCtract = "not-ctract"
	// FallbackTargetDeps: the setting has target constraints (Σt ≠ ∅).
	FallbackTargetDeps = "target-deps"
	// FallbackDisjunctive: the setting has disjunctive Σts dependencies.
	FallbackDisjunctive = "disjunctive-ts"
	// FallbackMarkedHead: some Σts tgd mentions a marked variable in its
	// head, so labeled nulls of the canonical target could be forced to
	// constants — the unfolding would be unsound.
	FallbackMarkedHead = "ts-marked-head"
	// FallbackPlanSize: the unfolding would exceed the disjunct budget.
	FallbackPlanSize = "plan-too-large"
	// FallbackNulls: an instance contains labeled nulls; the compiled
	// equivalence is proved for null-free inputs only.
	FallbackNulls = "instance-nulls"
)

// FallbackReasons lists every non-empty fallback reason, for metric
// label enumeration.
var FallbackReasons = []string{
	FallbackNotCtract,
	FallbackTargetDeps,
	FallbackDisjunctive,
	FallbackMarkedHead,
	FallbackPlanSize,
	FallbackNulls,
}

// maxDisjuncts bounds the size of a compiled plan: the unfolding of a
// single conjunctive query (or Σts body) may not exceed this many
// origin assignments.
const maxDisjuncts = 4096

// FallbackError reports that a setting, query, or instance pair is
// outside the compilable fragment. It is advisory, not fatal: callers
// fall back to the enumeration path and may surface Reason as a metric
// label.
type FallbackError struct {
	// Reason is one of the Fallback* constants (never FallbackNone).
	Reason string
	// Detail names the offending dependency or instance.
	Detail string
}

func (e *FallbackError) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("qplan: not compilable: %s", e.Reason)
	}
	return fmt.Sprintf("qplan: not compilable: %s (%s)", e.Reason, e.Detail)
}

// ReasonOf extracts the fallback reason from an error returned by the
// compile or eval entry points; it returns FallbackNone for nil and for
// errors that are not fallbacks (which callers should propagate).
func ReasonOf(err error) string {
	var fe *FallbackError
	if errors.As(err, &fe) {
		return fe.Reason
	}
	return FallbackNone
}

// ClassifySetting reports why the setting is outside the compilable
// fragment, or FallbackNone when CompileSetting will succeed.
func ClassifySetting(s *core.Setting) string {
	if err := classifySetting(s); err != nil {
		return ReasonOf(err)
	}
	return FallbackNone
}

func classifySetting(s *core.Setting) error {
	if len(s.T) > 0 {
		return &FallbackError{Reason: FallbackTargetDeps, Detail: s.Name}
	}
	if len(s.TSDisj) > 0 {
		return &FallbackError{Reason: FallbackDisjunctive, Detail: s.Name}
	}
	if !dep.ClassifyCtract(s.ST, s.TS, nil).InCtract {
		return &FallbackError{Reason: FallbackNotCtract, Detail: s.Name}
	}
	markedPos := dep.MarkedPositions(s.ST)
	for _, d := range s.TS {
		headVars := make(map[string]bool)
		for _, a := range d.Head {
			for _, v := range a.Vars() {
				headVars[v] = true
			}
		}
		for _, a := range d.Body {
			for i, t := range a.Args {
				if !t.IsConst && headVars[t.Name] && markedPos[dep.Position{Rel: a.Rel, Idx: i}] {
					return &FallbackError{
						Reason: FallbackMarkedHead,
						Detail: fmt.Sprintf("%s: variable %s", d.Label, t.Name),
					}
				}
			}
		}
	}
	return nil
}

// origin is one way a target atom can hold in the canonical target:
// matched against the stored target instance J, or produced by the
// atom-th head conjunct of the tgd-th source-to-target tgd.
type origin struct {
	tgd  int
	atom int
}

// probe is the compiled violation check of one Σts tgd: the unfolded
// body enumerates rows of head-variable bindings; each distinct row
// must extend to a homomorphism of the head into I.
type probe struct {
	label     string
	headVars  []string
	headAtoms []dep.Atom
	disjuncts []disjunct
}

// SettingPlan is the per-setting half of a compiled plan: the origin
// table for unfolding and the Σts violation probes deciding solution
// existence. It is immutable after CompileSetting and safe for
// concurrent use.
type SettingPlan struct {
	s *core.Setting
	// origins maps each target relation to the st-tgd head conjuncts
	// producing it.
	origins map[string][]origin
	// universal[d] is the universal-variable set of s.ST[d].
	universal []map[string]bool
	probes    []probe
}

// CompileSetting compiles the setting's origin table and Σts probes,
// or returns a *FallbackError when the setting is outside the fragment.
func CompileSetting(s *core.Setting) (*SettingPlan, error) {
	if err := classifySetting(s); err != nil {
		return nil, err
	}
	sp := &SettingPlan{
		s:         s,
		origins:   make(map[string][]origin),
		universal: make([]map[string]bool, len(s.ST)),
	}
	for di, d := range s.ST {
		uni := make(map[string]bool)
		for _, v := range d.UniversalVars() {
			uni[v] = true
		}
		sp.universal[di] = uni
		for ai, a := range d.Head {
			sp.origins[a.Rel] = append(sp.origins[a.Rel], origin{tgd: di, atom: ai})
		}
	}
	for _, d := range s.TS {
		headVars := headUniversalVars(d)
		headTerms := make([]dep.Term, len(headVars))
		for i, v := range headVars {
			headTerms[i] = dep.Var(v)
		}
		ds, _, err := sp.unfold(headTerms, d.Body, false)
		if err != nil {
			return nil, err
		}
		sp.probes = append(sp.probes, probe{
			label:     d.Label,
			headVars:  headVars,
			headAtoms: d.Head,
			disjuncts: ds,
		})
	}
	return sp, nil
}

// headUniversalVars returns the body variables of d that occur in its
// head, in first-occurrence order of the head.
func headUniversalVars(d dep.TGD) []string {
	body := make(map[string]bool)
	for _, a := range d.Body {
		for _, v := range a.Vars() {
			body[v] = true
		}
	}
	var out []string
	seen := make(map[string]bool)
	for _, a := range d.Head {
		for _, v := range a.Vars() {
			if body[v] && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Setting returns the compiled setting.
func (sp *SettingPlan) Setting() *core.Setting { return sp.s }

// EvalOptions configures plan evaluation.
type EvalOptions struct {
	// Parallelism bounds the workers of the leaf scans: 0 means
	// GOMAXPROCS, 1 forces the serial path. Results are byte-identical
	// at every setting.
	Parallelism int
	// Seed perturbs parallel work distribution; never results.
	Seed int64
	// Ctx, when non-nil, cancels the evaluation with an error wrapping
	// par.ErrCanceled.
	Ctx context.Context
}

func canceled(ctx context.Context, what string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("qplan: %s: %w: %w", what, par.ErrCanceled, err)
	}
	return nil
}

var emptyInstance = func() *rel.Instance {
	e := rel.NewInstance()
	e.Freeze()
	return e
}()

func orEmpty(inst *rel.Instance) *rel.Instance {
	if inst == nil {
		return emptyInstance
	}
	return inst
}

// checkInstances gates evaluation on null-free inputs (the fragment's
// equivalence is proved for null-free I and J only).
func (sp *SettingPlan) checkInstances(i, j *rel.Instance) error {
	if orEmpty(i).HasNulls() {
		return &FallbackError{Reason: FallbackNulls, Detail: "source instance"}
	}
	if orEmpty(j).HasNulls() {
		return &FallbackError{Reason: FallbackNulls, Detail: "target instance"}
	}
	return nil
}

// SolutionExists decides SOL(P) for (i, j) by running the compiled Σts
// probes: it returns false exactly when some distinct head-variable row
// of some unfolded Σts body has no extension into i. It returns a
// *FallbackError when an instance contains labeled nulls.
func (sp *SettingPlan) SolutionExists(i, j *rel.Instance, opts EvalOptions) (bool, error) {
	if err := sp.checkInstances(i, j); err != nil {
		return false, err
	}
	if err := canceled(opts.Ctx, "solution probes"); err != nil {
		return false, err
	}
	i, j = orEmpty(i), orEmpty(j)
	homOpts := hom.Options{Ctx: opts.Ctx}
	for pi := range sp.probes {
		pb := &sp.probes[pi]
		seen := make(map[rel.TupleKey]bool)
		b := hom.Binding{}
		for di := range pb.disjuncts {
			violated := false
			err := forEachRow(&pb.disjuncts[di], i, j, opts.Ctx, func(row rel.Tuple) bool {
				k := rel.KeyOf(row)
				if seen[k] {
					return true
				}
				seen[k] = true
				for vi, name := range pb.headVars {
					b[name] = row[vi]
				}
				if !hom.Exists(pb.headAtoms, i, b, homOpts) {
					violated = true
					return false
				}
				return true
			})
			if err != nil {
				return false, err
			}
			if violated {
				// A cut-short hom search may report a spurious miss;
				// never turn cancellation into a verdict.
				if cerr := canceled(opts.Ctx, "solution probe"); cerr != nil {
					return false, cerr
				}
				return false, nil
			}
		}
	}
	return true, nil
}

// Plan is a compiled certain-answer plan for one UCQ over one setting.
// It is immutable after compilation and safe for concurrent use.
type Plan struct {
	sp        *SettingPlan
	name      string
	boolean   bool
	headArity int
	disjuncts []disjunct
	// dropped counts the unfolded disjuncts discarded because they bind
	// a head variable to an existential (null-producing) position.
	dropped int
}

// CompileQuery unfolds the UCQ into a plan over the setting. The query
// must validate against the setting's target schema.
func (sp *SettingPlan) CompileQuery(q certain.UCQ) (*Plan, error) {
	if err := q.Validate(sp.s.Target); err != nil {
		return nil, err
	}
	p := &Plan{
		sp:        sp,
		name:      q[0].Name,
		boolean:   q[0].IsBoolean(),
		headArity: len(q[0].Head),
	}
	seen := make(map[string]bool)
	for _, cq := range q {
		headTerms := make([]dep.Term, len(cq.Head))
		for i, v := range cq.Head {
			headTerms[i] = dep.Var(v)
		}
		ds, dropped, err := sp.unfold(headTerms, cq.Body, !p.boolean)
		if err != nil {
			return nil, err
		}
		p.dropped += dropped
		for _, d := range ds {
			if seen[d.key] {
				continue
			}
			seen[d.key] = true
			p.disjuncts = append(p.disjuncts, d)
		}
	}
	return p, nil
}

// Compile is the one-shot form: CompileSetting followed by
// CompileQuery.
func Compile(s *core.Setting, q certain.UCQ) (*Plan, error) {
	sp, err := CompileSetting(s)
	if err != nil {
		return nil, err
	}
	return sp.CompileQuery(q)
}

// IsBoolean reports whether the compiled query has an empty head.
func (p *Plan) IsBoolean() bool { return p.boolean }

// Name returns the query name the plan was compiled from.
func (p *Plan) Name() string { return p.name }

// SettingPlan returns the per-setting half the plan was compiled
// against.
func (p *Plan) SettingPlan() *SettingPlan { return p.sp }

// Eval computes the certain-answer result for (i, j): it runs the
// solution probes, then evaluates the compiled query. The result is
// byte-identical to the chase-backed certain.Boolean / certain.Answers
// (SolutionsExamined excepted: the compiled path examines none).
func (p *Plan) Eval(i, j *rel.Instance, opts EvalOptions) (certain.Result, error) {
	ok, err := p.sp.SolutionExists(i, j, opts)
	if err != nil {
		return certain.Result{}, err
	}
	return p.EvalGiven(ok, i, j, opts)
}

// EvalGiven is Eval with the solution-existence verdict supplied by the
// caller, so a batch of queries over one instance pair runs the probes
// once. The caller must have obtained solutionExists from
// SolutionExists on the same (i, j) — which also vetted the instances
// as null-free.
func (p *Plan) EvalGiven(solutionExists bool, i, j *rel.Instance, opts EvalOptions) (certain.Result, error) {
	if !solutionExists {
		// No solution: a Boolean query is vacuously certain; package
		// certain leaves the Certain field untouched (false) for open
		// queries, and the compiled result mirrors it bit for bit.
		return certain.Result{SolutionExists: false, Certain: p.boolean}, nil
	}
	if err := canceled(opts.Ctx, "plan eval"); err != nil {
		return certain.Result{}, err
	}
	i, j = orEmpty(i), orEmpty(j)
	res := certain.Result{SolutionExists: true, Certain: p.boolean}
	if p.boolean {
		found, err := p.holds(i, j, opts)
		if err != nil {
			return res, err
		}
		res.Certain = found
		return res, nil
	}
	answers, err := p.answers(i, j, opts)
	if err != nil {
		return res, err
	}
	res.Answers = answers
	return res, nil
}

// holds reports whether any disjunct matches (Boolean certainty).
func (p *Plan) holds(i, j *rel.Instance, opts EvalOptions) (bool, error) {
	for di := range p.disjuncts {
		found, err := existsMatch(&p.disjuncts[di], i, j, opts)
		if err != nil {
			return false, err
		}
		if found {
			return true, nil
		}
	}
	return false, nil
}

// answers evaluates every disjunct and returns the deduplicated head
// rows, sorted as in package certain. All rows are ground by
// construction (null-producing disjuncts were dropped at compile time).
func (p *Plan) answers(i, j *rel.Instance, opts EvalOptions) ([]rel.Tuple, error) {
	seen := make(map[rel.TupleKey]bool)
	var out []rel.Tuple
	for di := range p.disjuncts {
		rows, err := collectRows(&p.disjuncts[di], i, j, opts)
		if err != nil {
			return nil, err
		}
		for _, t := range rows {
			k := rel.KeyOf(t)
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, t)
		}
	}
	sortTuples(out)
	return out, nil
}

// sortTuples orders tuples exactly as package certain does, so compiled
// answers are byte-identical to the enumeration path's.
func sortTuples(ts []rel.Tuple) {
	keys := make([]string, len(ts))
	for i, t := range ts {
		keys[i] = t.String()
	}
	sort.Sort(&tupleSorter{ts: ts, keys: keys})
}

type tupleSorter struct {
	ts   []rel.Tuple
	keys []string
}

func (s *tupleSorter) Len() int           { return len(s.ts) }
func (s *tupleSorter) Less(a, b int) bool { return s.keys[a] < s.keys[b] }
func (s *tupleSorter) Swap(a, b int) {
	s.ts[a], s.ts[b] = s.ts[b], s.ts[a]
	s.keys[a], s.keys[b] = s.keys[b], s.keys[a]
}

// String renders the plan for offline inspection (pdx compile): the
// normalized source-side disjuncts, the dropped-disjunct count, and the
// solution probes shared by every plan of the setting.
func (p *Plan) String() string {
	var b strings.Builder
	kind := "open"
	if p.boolean {
		kind = "boolean"
	}
	fmt.Fprintf(&b, "plan %s: %s, head arity %d, %d disjunct(s)", p.name, kind, p.headArity, len(p.disjuncts))
	if p.dropped > 0 {
		fmt.Fprintf(&b, ", %d null-head disjunct(s) dropped", p.dropped)
	}
	b.WriteString("\n")
	for i := range p.disjuncts {
		fmt.Fprintf(&b, "  %s%s\n", p.name, p.disjuncts[i].render())
	}
	for pi := range p.sp.probes {
		pb := &p.sp.probes[pi]
		for di := range pb.disjuncts {
			fmt.Fprintf(&b, "  probe %s: check", pb.label)
			for ai, a := range pb.headAtoms {
				if ai > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, " %s", a)
			}
			fmt.Fprintf(&b, " over%s\n", pb.disjuncts[di].renderWith(pb.headVars))
		}
	}
	return b.String()
}
