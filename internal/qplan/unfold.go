// Unfolding: rewriting a conjunction of target atoms into a union of
// conjunctions over the source instance I and the stored target
// instance J.
//
// Every target atom either holds in J directly or is the instance of
// one head conjunct of one st-tgd trigger. The oblivious st-chase fires
// one trigger per (tgd, universal binding), so the labeled null filling
// an existential position is a Skolem term f_{d,e}(universal vars): two
// occurrences denote the same null exactly when they come from the same
// tgd, the same existential variable, and equal universal bindings.
// The unifier below encodes that discipline — each atom gets its own
// renamed trigger copy, and joining two existential positions merges
// the two copies (forcing equal universal bindings) when they agree on
// (tgd, variable) and prunes the disjunct otherwise. A null can never
// equal a constant or a value drawn from the null-free I or J, so such
// unifications prune too.
package qplan

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dep"
	"repro/internal/rel"
)

// cterm is a compiled term: a constant value or a variable slot.
type cterm struct {
	constant bool
	val      rel.Value
	v        int
}

// catom is a compiled atom, evaluated against the source instance
// (source=true) or the stored target instance.
type catom struct {
	source bool
	rel    string
	args   []cterm
}

// disjunct is one conjunct of the compiled union: atoms in emission
// order, a greedy execution order over them, and the head row template.
type disjunct struct {
	atoms []catom
	order []int
	head  []cterm
	nvars int
	// key is the canonical rendering used for deduplication.
	key string
}

// unfold rewrites (head, body) — a query disjunct or a Σts body with
// its head variables — into compiled disjuncts. dropNullHeads drops
// disjuncts binding a head variable to an existential position (open
// queries: only ground rows can be certain); when false such a binding
// is an internal error, since the fragment gate proved Σts heads
// null-free. The second result counts the dropped disjuncts.
func (sp *SettingPlan) unfold(head []dep.Term, body []dep.Atom, dropNullHeads bool) ([]disjunct, int, error) {
	// One choice list per atom: the stored target instance, then every
	// st head conjunct over the same relation.
	choices := make([][]origin, len(body))
	total := 1
	for k, a := range body {
		opts := make([]origin, 0, 1+len(sp.origins[a.Rel]))
		opts = append(opts, origin{tgd: -1}) // match against J
		opts = append(opts, sp.origins[a.Rel]...)
		choices[k] = opts
		total *= len(opts)
		if total > maxDisjuncts {
			return nil, 0, &FallbackError{
				Reason: FallbackPlanSize,
				Detail: fmt.Sprintf("more than %d origin assignments", maxDisjuncts),
			}
		}
	}
	var out []disjunct
	dropped := 0
	asg := make([]int, len(body))
	for {
		d, drop, err := sp.buildDisjunct(head, body, choices, asg, dropNullHeads)
		if err != nil {
			return nil, 0, err
		}
		if drop {
			dropped++
		} else if d != nil {
			out = append(out, *d)
		}
		// Next assignment, in mixed-radix order.
		k := len(asg) - 1
		for ; k >= 0; k-- {
			asg[k]++
			if asg[k] < len(choices[k]) {
				break
			}
			asg[k] = 0
		}
		if k < 0 {
			break
		}
	}
	return out, dropped, nil
}

// unifier is a union-find over query variables and trigger-copy
// variables, with per-class attributes: a constant binding, or an
// existential marker (copy, variable) identifying a Skolem null.
type unifier struct {
	sp     *SettingPlan
	parent []int
	size   []int
	attrs  []attr

	// copies created for this disjunct: tgd index and the nodes of the
	// tgd's universal variables.
	copyTGD    []int
	copyParent []int
	copyVars   []map[string]int

	queue  [][2]int
	failed bool
}

type attr struct {
	hasConst bool
	constVal rel.Value
	hasEx    bool
	exCopy   int
	exVar    string
}

func newUnifier(sp *SettingPlan) *unifier { return &unifier{sp: sp} }

func (u *unifier) newNode() int {
	u.parent = append(u.parent, len(u.parent))
	u.size = append(u.size, 1)
	u.attrs = append(u.attrs, attr{})
	return len(u.parent) - 1
}

func (u *unifier) find(n int) int {
	for u.parent[n] != n {
		u.parent[n] = u.parent[u.parent[n]]
		n = u.parent[n]
	}
	return n
}

// newCopy allocates a fresh trigger copy of st-tgd di, with its own
// nodes for the tgd's universal variables.
func (u *unifier) newCopy(di int) int {
	vars := make(map[string]int)
	for _, v := range u.sp.s.ST[di].UniversalVars() {
		vars[v] = u.newNode()
	}
	u.copyTGD = append(u.copyTGD, di)
	u.copyParent = append(u.copyParent, len(u.copyParent))
	u.copyVars = append(u.copyVars, vars)
	return len(u.copyTGD) - 1
}

// findCopy resolves a copy to its representative; merged copies keep
// the earliest-created one as root, so emission order is stable.
func (u *unifier) findCopy(c int) int {
	for u.copyParent[c] != c {
		u.copyParent[c] = u.copyParent[u.copyParent[c]]
		c = u.copyParent[c]
	}
	return c
}

// union enqueues a node unification and drains the worklist.
func (u *unifier) union(a, b int) {
	u.queue = append(u.queue, [2]int{a, b})
	u.drain()
}

func (u *unifier) drain() {
	for len(u.queue) > 0 && !u.failed {
		pair := u.queue[len(u.queue)-1]
		u.queue = u.queue[:len(u.queue)-1]
		ra, rb := u.find(pair[0]), u.find(pair[1])
		if ra == rb {
			continue
		}
		if u.size[ra] < u.size[rb] {
			ra, rb = rb, ra
		}
		merged, ok := u.mergeAttrs(u.attrs[ra], u.attrs[rb])
		if !ok {
			u.failed = true
			return
		}
		u.parent[rb] = ra
		u.size[ra] += u.size[rb]
		u.attrs[ra] = merged
	}
}

// mergeAttrs combines two class attributes, enqueuing copy merges when
// two Skolem markers coincide. It reports false on contradiction: two
// distinct constants, or a constant meeting a Skolem null.
func (u *unifier) mergeAttrs(a, b attr) (attr, bool) {
	if a.hasConst && b.hasConst && a.constVal != b.constVal {
		return attr{}, false
	}
	if (a.hasConst && b.hasEx) || (a.hasEx && b.hasConst) {
		return attr{}, false
	}
	out := a
	if b.hasConst {
		out.hasConst, out.constVal = true, b.constVal
	}
	if a.hasEx && b.hasEx {
		ca, cb := u.findCopy(a.exCopy), u.findCopy(b.exCopy)
		if u.copyTGD[ca] != u.copyTGD[cb] || a.exVar != b.exVar {
			// Nulls from different tgds or different existential
			// variables are always distinct.
			return attr{}, false
		}
		u.mergeCopies(ca, cb)
	} else if b.hasEx {
		out.hasEx, out.exCopy, out.exVar = true, b.exCopy, b.exVar
	}
	return out, true
}

// mergeCopies identifies two trigger copies of the same tgd: their
// universal bindings must agree, so the corresponding variable nodes
// are enqueued for unification.
func (u *unifier) mergeCopies(ca, cb int) {
	if ca == cb {
		return
	}
	if ca > cb {
		ca, cb = cb, ca
	}
	u.copyParent[cb] = ca
	for _, v := range u.sp.s.ST[u.copyTGD[ca]].UniversalVars() {
		u.queue = append(u.queue, [2]int{u.copyVars[ca][v], u.copyVars[cb][v]})
	}
}

func (u *unifier) bindConst(n int, val rel.Value) {
	r := u.find(n)
	merged, ok := u.mergeAttrs(u.attrs[r], attr{hasConst: true, constVal: val})
	if !ok {
		u.failed = true
		return
	}
	u.attrs[r] = merged
	u.drain()
}

func (u *unifier) bindExistential(n, copyID int, evar string) {
	r := u.find(n)
	merged, ok := u.mergeAttrs(u.attrs[r], attr{hasEx: true, exCopy: copyID, exVar: evar})
	if !ok {
		u.failed = true
		return
	}
	u.attrs[r] = merged
	u.drain()
}

// buildDisjunct compiles one origin assignment. It returns (nil, true,
// nil) when the disjunct is dropped for binding a head variable to a
// null, and (nil, false, nil) when unification pruned it.
func (sp *SettingPlan) buildDisjunct(head []dep.Term, body []dep.Atom, choices [][]origin, asg []int, dropNullHeads bool) (*disjunct, bool, error) {
	u := newUnifier(sp)
	qvar := make(map[string]int)
	node := func(name string) int {
		n, ok := qvar[name]
		if !ok {
			n = u.newNode()
			qvar[name] = n
		}
		return n
	}
	// Per body atom: the trigger copy serving it (-1 when matched
	// against J).
	atomCopy := make([]int, len(body))
	for k, a := range body {
		o := choices[k][asg[k]]
		if o.tgd < 0 {
			atomCopy[k] = -1
			// Still materialize nodes for the atom's variables, so
			// head variables resolve even for J-only disjuncts.
			for _, t := range a.Args {
				if !t.IsConst {
					node(t.Name)
				}
			}
			continue
		}
		c := u.newCopy(o.tgd)
		atomCopy[k] = c
		headAtom := sp.s.ST[o.tgd].Head[o.atom]
		for p, ht := range headAtom.Args {
			qt := a.Args[p]
			switch {
			case ht.IsConst && qt.IsConst:
				if ht.Name != qt.Name {
					u.failed = true
				}
			case ht.IsConst:
				u.bindConst(node(qt.Name), rel.Const(ht.Name))
			case sp.universal[o.tgd][ht.Name]:
				hn := u.copyVars[c][ht.Name]
				if qt.IsConst {
					u.bindConst(hn, rel.Const(qt.Name))
				} else {
					u.union(node(qt.Name), hn)
				}
			default: // existential position: a Skolem null
				if qt.IsConst {
					u.failed = true // a null never equals a constant
				} else {
					u.bindExistential(node(qt.Name), c, ht.Name)
				}
			}
			if u.failed {
				return nil, false, nil
			}
		}
	}

	// Emission: trigger-copy bodies (once per merged copy) and J atoms,
	// in body-atom order. Variable slots are assigned per class root in
	// first-appearance order.
	d := &disjunct{}
	slots := make(map[int]int)
	pruned := false
	termOf := func(t dep.Term, copyID int) cterm {
		if t.IsConst {
			return cterm{constant: true, val: rel.Const(t.Name)}
		}
		var n int
		if copyID >= 0 {
			n = u.copyVars[copyID][t.Name]
		} else {
			n = node(t.Name)
		}
		r := u.find(n)
		at := u.attrs[r]
		if at.hasConst {
			return cterm{constant: true, val: at.constVal}
		}
		if at.hasEx {
			// A Skolem null flowed into an instance-matched position;
			// the null-free instances can never supply it.
			pruned = true
			return cterm{}
		}
		s, ok := slots[r]
		if !ok {
			s = d.nvars
			d.nvars++
			slots[r] = s
		}
		return cterm{v: s}
	}
	seenAtom := make(map[string]bool)
	emit := func(source bool, relName string, args []dep.Term, copyID int) {
		ct := make([]cterm, len(args))
		for p, t := range args {
			ct[p] = termOf(t, copyID)
			if pruned {
				return
			}
		}
		a := catom{source: source, rel: relName, args: ct}
		k := a.render()
		if seenAtom[k] {
			return
		}
		seenAtom[k] = true
		d.atoms = append(d.atoms, a)
	}
	emittedCopy := make(map[int]bool)
	for k, a := range body {
		if atomCopy[k] < 0 {
			emit(false, a.Rel, a.Args, -1)
		} else {
			c := u.findCopy(atomCopy[k])
			if !emittedCopy[c] {
				emittedCopy[c] = true
				for _, ba := range sp.s.ST[u.copyTGD[c]].Body {
					emit(true, ba.Rel, ba.Args, c)
					if pruned {
						return nil, false, nil
					}
				}
			}
		}
		if pruned {
			return nil, false, nil
		}
	}

	// Head template.
	d.head = make([]cterm, len(head))
	for hi, t := range head {
		if t.IsConst {
			d.head[hi] = cterm{constant: true, val: rel.Const(t.Name)}
			continue
		}
		r := u.find(node(t.Name))
		at := u.attrs[r]
		switch {
		case at.hasConst:
			d.head[hi] = cterm{constant: true, val: at.constVal}
		case at.hasEx:
			if !dropNullHeads {
				return nil, false, fmt.Errorf("qplan: internal: probe head variable %s bound to a null", t.Name)
			}
			return nil, true, nil
		default:
			s, ok := slots[r]
			if !ok {
				// The head variable's class never reached an emitted
				// atom; it cannot be produced (defensive — Validate
				// guarantees head variables occur in the body).
				return nil, false, nil
			}
			d.head[hi] = cterm{v: s}
		}
	}

	d.order = joinOrder(d.atoms)
	d.key = d.render()
	return d, false, nil
}

// joinOrder greedily orders atoms for execution: repeatedly pick the
// atom with the most bound argument positions (constants or variables
// bound by earlier atoms), breaking ties by emission order.
func joinOrder(atoms []catom) []int {
	n := len(atoms)
	used := make([]bool, n)
	bound := make(map[int]bool)
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestScore := -1, -1
		for k := range atoms {
			if used[k] {
				continue
			}
			score := 0
			for _, t := range atoms[k].args {
				if t.constant || bound[t.v] {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = k, score
			}
		}
		used[best] = true
		order = append(order, best)
		for _, t := range atoms[best].args {
			if !t.constant {
				bound[t.v] = true
			}
		}
	}
	return order
}

// render produces the canonical text of the disjunct: head then atoms,
// with variables renumbered by first occurrence so structurally equal
// disjuncts from different origin assignments deduplicate.
func (d *disjunct) render() string {
	return d.renderWith(nil)
}

// renderWith is render with head-variable names substituted for the
// head slots (used for probe display).
func (d *disjunct) renderWith(headNames []string) string {
	canon := make(map[int]int)
	var b strings.Builder
	writeTerm := func(t cterm) {
		if t.constant {
			b.WriteString(t.val.String())
			return
		}
		c, ok := canon[t.v]
		if !ok {
			c = len(canon)
			canon[t.v] = c
		}
		b.WriteString("v")
		b.WriteString(strconv.Itoa(c))
	}
	if len(d.head) > 0 {
		b.WriteString("(")
		for i, t := range d.head {
			if i > 0 {
				b.WriteString(", ")
			}
			if headNames != nil && !t.constant {
				b.WriteString(headNames[i])
				b.WriteString("=")
			}
			writeTerm(t)
		}
		b.WriteString(")")
	}
	b.WriteString(" :- ")
	for i := range d.atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		a := &d.atoms[i]
		if a.source {
			b.WriteString("src:")
		} else {
			b.WriteString("tgt:")
		}
		b.WriteString(a.rel)
		b.WriteString("(")
		for p, t := range a.args {
			if p > 0 {
				b.WriteString(", ")
			}
			writeTerm(t)
		}
		b.WriteString(")")
	}
	return b.String()
}

// render is the exact (slot-numbered) form of one atom, used to drop
// duplicate atoms within a disjunct.
func (a *catom) render() string {
	var b strings.Builder
	if a.source {
		b.WriteString("s:")
	} else {
		b.WriteString("t:")
	}
	b.WriteString(a.rel)
	for _, t := range a.args {
		b.WriteString("|")
		if t.constant {
			b.WriteString(t.val.String())
		} else {
			b.WriteString("v")
			b.WriteString(strconv.Itoa(t.v))
		}
	}
	return b.String()
}
