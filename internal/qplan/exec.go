// Plan execution: an index-driven backtracking join over the compiled
// atoms, with deterministic parallel leaf scans. The top atom of each
// disjunct fans its candidate tuples out over par workers in contiguous
// chunks; per-chunk results merge in chunk order, so output is
// byte-identical at every Parallelism/Seed setting.
package qplan

import (
	"context"
	"sync/atomic"

	"repro/internal/par"
	"repro/internal/rel"
)

// ctxPollEvery is how many candidate tuples a scan visits between
// context polls (matching the hom searcher's cadence).
const ctxPollEvery = 1024

// runner is the per-worker backtracking state of one disjunct.
type runner struct {
	d      *disjunct
	i, j   *rel.Instance
	ctx    context.Context
	steps  int
	stop   bool // context canceled
	halted bool // emit returned false
	emit   func(rel.Tuple) bool
	vals   []rel.Value
	set    []bool
}

func newRunner(d *disjunct, i, j *rel.Instance, ctx context.Context, emit func(rel.Tuple) bool) *runner {
	return &runner{
		d: d, i: i, j: j, ctx: ctx, emit: emit,
		vals: make([]rel.Value, d.nvars),
		set:  make([]bool, d.nvars),
	}
}

func (r *runner) instFor(a *catom) *rel.Instance {
	if a.source {
		return r.i
	}
	return r.j
}

// poll reports false when the context is done.
func (r *runner) poll() bool {
	r.steps++
	if r.steps >= ctxPollEvery {
		r.steps = 0
		if r.ctx != nil && r.ctx.Err() != nil {
			r.stop = true
			return false
		}
	}
	return true
}

// run matches d.order[depth:] under the current binding, emitting every
// complete head row. It returns false to unwind the whole search (emit
// stopped it, or the context is done).
func (r *runner) run(depth int) bool {
	if depth == len(r.d.order) {
		out := make(rel.Tuple, len(r.d.head))
		for i, t := range r.d.head {
			if t.constant {
				out[i] = t.val
			} else {
				out[i] = r.vals[t.v]
			}
		}
		if !r.emit(out) {
			r.halted = true
			return false
		}
		return true
	}
	a := &r.d.atoms[r.d.order[depth]]
	rl := r.instFor(a).Relation(a.rel)
	if rl == nil {
		return true
	}
	cands, full := r.candidates(a, rl)
	if full {
		for idx := 0; idx < rl.Len(); idx++ {
			if !rl.Live(idx) {
				continue
			}
			if !r.tryTuple(a, rl.TupleAt(idx), depth) {
				return false
			}
		}
		return true
	}
	for _, idx := range cands {
		if !r.tryTuple(a, rl.TupleAt(idx), depth) {
			return false
		}
	}
	return true
}

// candidates picks the tightest position index for the atom under the
// current binding; full=true means no position is bound and the whole
// relation must be scanned.
func (r *runner) candidates(a *catom, rl *rel.Relation) (cands []int, full bool) {
	best := -1
	for p, t := range a.args {
		var v rel.Value
		switch {
		case t.constant:
			v = t.val
		case r.set[t.v]:
			v = r.vals[t.v]
		default:
			continue
		}
		m := rl.MatchingAt(p, v)
		if best < 0 || len(m) < best {
			cands, best = m, len(m)
		}
		if best == 0 {
			break
		}
	}
	return cands, best < 0
}

// tryTuple extends the binding with one candidate tuple and recurses.
func (r *runner) tryTuple(a *catom, tup rel.Tuple, depth int) bool {
	if !r.poll() {
		return false
	}
	var newlyArr [16]int
	newly := newlyArr[:0]
	ok := true
	for p, t := range a.args {
		v := tup[p]
		if t.constant {
			if t.val != v {
				ok = false
				break
			}
			continue
		}
		if r.set[t.v] {
			if r.vals[t.v] != v {
				ok = false
				break
			}
			continue
		}
		r.vals[t.v] = v
		r.set[t.v] = true
		newly = append(newly, t.v)
	}
	cont := true
	if ok {
		cont = r.run(depth + 1)
	}
	for _, s := range newly {
		r.set[s] = false
	}
	return cont
}

// topCandidates returns the tuple indices the top atom scans: the
// tightest constant-bound position index, or every live tuple.
func topCandidates(a *catom, rl *rel.Relation) []int {
	best := -1
	var cands []int
	for p, t := range a.args {
		if !t.constant {
			continue
		}
		m := rl.MatchingAt(p, t.val)
		if best < 0 || len(m) < best {
			cands, best = m, len(m)
		}
		if best == 0 {
			break
		}
	}
	if best >= 0 {
		return cands
	}
	out := make([]int, 0, rl.LiveLen())
	for idx := 0; idx < rl.Len(); idx++ {
		if rl.Live(idx) {
			out = append(out, idx)
		}
	}
	return out
}

// collectRows evaluates one disjunct and returns every head row in
// candidate order (duplicates included; the caller deduplicates).
func collectRows(d *disjunct, i, j *rel.Instance, opts EvalOptions) ([]rel.Tuple, error) {
	if len(d.order) == 0 {
		return nil, nil
	}
	a := &d.atoms[d.order[0]]
	inst := j
	if a.source {
		inst = i
	}
	rl := inst.Relation(a.rel)
	if rl == nil {
		return nil, nil
	}
	cands := topCandidates(a, rl)
	if len(cands) == 0 {
		return nil, nil
	}
	degree := par.Degree(opts.Parallelism)
	chunks := par.Chunks(len(cands), degree)
	results := make([][]rel.Tuple, len(chunks))
	var sawCancel atomic.Bool
	par.Do(len(chunks), degree, opts.Seed, func(ci int) {
		r := newRunner(d, i, j, opts.Ctx, nil)
		r.emit = func(t rel.Tuple) bool {
			results[ci] = append(results[ci], t)
			return true
		}
		for _, idx := range cands[chunks[ci][0]:chunks[ci][1]] {
			if !r.tryTuple(a, rl.TupleAt(idx), 0) {
				break
			}
		}
		if r.stop {
			sawCancel.Store(true)
		}
	})
	if sawCancel.Load() {
		if err := canceled(opts.Ctx, "plan scan"); err != nil {
			return nil, err
		}
	}
	var out []rel.Tuple
	for _, rs := range results {
		out = append(out, rs...)
	}
	return out, nil
}

// existsMatch reports whether the disjunct has any match. The verdict
// is order-independent, so chunks race freely and the first match
// cancels the rest.
func existsMatch(d *disjunct, i, j *rel.Instance, opts EvalOptions) (bool, error) {
	if len(d.order) == 0 {
		return true, nil
	}
	a := &d.atoms[d.order[0]]
	inst := j
	if a.source {
		inst = i
	}
	rl := inst.Relation(a.rel)
	if rl == nil {
		return false, nil
	}
	cands := topCandidates(a, rl)
	if len(cands) == 0 {
		return false, nil
	}
	degree := par.Degree(opts.Parallelism)
	chunks := par.Chunks(len(cands), degree)
	var sawCancel atomic.Bool
	hit := par.FirstReject(len(chunks), degree, func(ci int) bool {
		r := newRunner(d, i, j, opts.Ctx, func(rel.Tuple) bool { return false })
		for _, idx := range cands[chunks[ci][0]:chunks[ci][1]] {
			if !r.tryTuple(a, rl.TupleAt(idx), 0) {
				break
			}
		}
		if r.stop {
			sawCancel.Store(true)
		}
		return !r.halted // reject the chunk when it found a match
	})
	if sawCancel.Load() {
		if err := canceled(opts.Ctx, "plan scan"); err != nil {
			return false, err
		}
	}
	return hit >= 0, nil
}

// forEachRow enumerates one disjunct's head rows serially, stopping
// when fn returns false (used by the solution probes, which want early
// exit on the first violation).
func forEachRow(d *disjunct, i, j *rel.Instance, ctx context.Context, fn func(rel.Tuple) bool) error {
	if len(d.order) == 0 {
		return nil
	}
	a := &d.atoms[d.order[0]]
	inst := j
	if a.source {
		inst = i
	}
	rl := inst.Relation(a.rel)
	if rl == nil {
		return nil
	}
	r := newRunner(d, i, j, ctx, fn)
	for _, idx := range topCandidates(a, rl) {
		if !r.tryTuple(a, rl.TupleAt(idx), 0) {
			break
		}
	}
	if r.stop {
		return canceled(ctx, "probe scan")
	}
	return nil
}
