package qplan

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/certain"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/rel"
	"repro/internal/workload"
)

func mustCompile(t *testing.T, s *core.Setting, q certain.UCQ) *Plan {
	t.Helper()
	p, err := Compile(s, q)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

func openQ(name string, head []string, body ...dep.Atom) certain.UCQ {
	return certain.UCQ{{Name: name, Head: head, Body: body}}
}

// TestLAVCompiled pins the compiled path on the LAV workload family
// against hand-computed expectations.
func TestLAVCompiled(t *testing.T) {
	s := workload.LAVSetting()
	rng := rand.New(rand.NewSource(1))
	i, j := workload.LAVInstance(3, true, rng)

	// Open query projecting the constant positions: every Person pair.
	q := openQ("q", []string{"x", "g"}, dep.NewAtom("Rec", dep.Var("x"), dep.Var("g"), dep.Var("u")))
	p := mustCompile(t, s, q)
	res, err := p.Eval(i, j, EvalOptions{Parallelism: 1})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if !res.SolutionExists || len(res.Answers) != 3 {
		t.Fatalf("got SolutionExists=%v answers=%v, want 3 answers", res.SolutionExists, res.Answers)
	}

	// Head variable on the existential position: the disjunct drops, no
	// ground tuple is certain.
	qNull := openQ("qn", []string{"x", "u"}, dep.NewAtom("Rec", dep.Var("x"), dep.Var("g"), dep.Var("u")))
	pNull := mustCompile(t, s, qNull)
	if pNull.dropped != 1 {
		t.Fatalf("dropped = %d, want 1", pNull.dropped)
	}
	res, err = pNull.Eval(i, j, EvalOptions{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if !res.SolutionExists || res.Answers != nil {
		t.Fatalf("null-head query: got %+v, want no answers", res)
	}

	// Boolean query: nulls may appear anywhere in the match.
	qb := certain.UCQ{{Name: "qb", Body: []dep.Atom{dep.NewAtom("Rec", dep.Var("x"), dep.Var("g"), dep.Var("u"))}}}
	pb := mustCompile(t, s, qb)
	res, err = pb.Eval(i, j, EvalOptions{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if !res.Certain {
		t.Fatalf("boolean: got not certain, want certain")
	}

	// Unsolvable instance: no solution, vacuous certainty.
	iBad, jBad := workload.LAVInstance(3, false, rand.New(rand.NewSource(1)))
	res, err = p.Eval(iBad, jBad, EvalOptions{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if res.SolutionExists || res.Answers != nil {
		t.Fatalf("unsolvable: got %+v, want vacuous result", res)
	}
}

// TestCompiledMatchesChaseOnStockFamilies compares the compiled path
// against the enumeration path on the stock compilable workloads.
func TestCompiledMatchesChaseOnStockFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name string
		s    *core.Setting
		i, j *rel.Instance
		q    certain.UCQ
	}{}
	{
		s := workload.LAVSetting()
		i, j := workload.LAVInstance(3, true, rng)
		cases = append(cases,
			struct {
				name string
				s    *core.Setting
				i, j *rel.Instance
				q    certain.UCQ
			}{"lav-open", s, i, j, openQ("q", []string{"x", "g"}, dep.NewAtom("Rec", dep.Var("x"), dep.Var("g"), dep.Var("u")))},
		)
	}
	{
		s := workload.FullSTSetting()
		i, j := workload.FullSTInstance(4, true, rng)
		cases = append(cases,
			struct {
				name string
				s    *core.Setting
				i, j *rel.Instance
				q    certain.UCQ
			}{"fullst-open", s, i, j, openQ("q", []string{"x", "y"}, dep.NewAtom("H", dep.Var("x"), dep.Var("y")))},
		)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mustCompile(t, tc.s, tc.q)
			got, err := p.Eval(tc.i, tc.j, EvalOptions{Parallelism: 1})
			if err != nil {
				t.Fatalf("compiled: %v", err)
			}
			want, err := certain.Answers(tc.s, tc.i, tc.j, tc.q, certain.Options{})
			if err != nil {
				t.Fatalf("enumeration: %v", err)
			}
			if got.SolutionExists != want.SolutionExists || !reflect.DeepEqual(got.Answers, want.Answers) {
				t.Fatalf("compiled %+v != enumerated %+v", got, want)
			}
		})
	}
}

// TestFallbackReasons pins the typed reasons for each gate of the
// fragment.
func TestFallbackReasons(t *testing.T) {
	keyed := workload.KeyedLAVSetting()
	if r := ClassifySetting(keyed); r != FallbackTargetDeps {
		t.Fatalf("keyed: reason %q, want %q", r, FallbackTargetDeps)
	}

	// The canonical soundness trap: P(x) -> ∃y R(x,y); R(x,y) -> P(y)
	// is in C_tract, but Σts forces the null to a constant, so the
	// compiled unfolding must refuse it (see TestMarkedHeadFallbackPinned).
	trap := markedHeadSetting()
	if r := ClassifySetting(trap); r != FallbackMarkedHead {
		t.Fatalf("trap: reason %q, want %q", r, FallbackMarkedHead)
	}
	if _, err := CompileSetting(trap); ReasonOf(err) != FallbackMarkedHead {
		t.Fatalf("CompileSetting(trap): %v", err)
	}

	// Nulls in an instance are an eval-time fallback.
	s := workload.LAVSetting()
	sp, err := CompileSetting(s)
	if err != nil {
		t.Fatalf("CompileSetting: %v", err)
	}
	i := rel.NewInstance()
	i.Add("Person", rel.Const("p"), rel.Null(1))
	i.Freeze()
	if _, err := sp.SolutionExists(i, nil, EvalOptions{}); ReasonOf(err) != FallbackNulls {
		t.Fatalf("null instance: %v", err)
	}

	if ReasonOf(nil) != FallbackNone || ReasonOf(errors.New("x")) != FallbackNone {
		t.Fatal("ReasonOf should be FallbackNone for nil and foreign errors")
	}
}

// markedHeadSetting is in C_tract but outside the compilable fragment:
// the marked variable y flows into the Σts head.
func markedHeadSetting() *core.Setting {
	return &core.Setting{
		Name:   "marked-head-trap",
		Source: rel.SchemaOf("P", 1),
		Target: rel.SchemaOf("R", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("P", dep.Var("x"))},
			Head:  []dep.Atom{dep.NewAtom("R", dep.Var("x"), dep.Var("y"))},
		}},
		TS: []dep.TGD{{
			Label: "ts",
			Body:  []dep.Atom{dep.NewAtom("R", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("P", dep.Var("y"))},
		}},
	}
}

// TestMarkedHeadFallbackPinned pins WHY the marked-head gate exists:
// on the trap setting the enumeration path finds certain answers that
// a naive ground-only unfolding could never produce — Σts forces the
// null to a constant, making {(a,a)} certain for q(x,y) :- R(x,y).
func TestMarkedHeadFallbackPinned(t *testing.T) {
	s := markedHeadSetting()
	i := rel.NewInstance()
	i.Add("P", rel.Const("a"))
	i.Freeze()
	j := rel.NewInstance()
	j.Freeze()
	q := openQ("q", []string{"x", "y"}, dep.NewAtom("R", dep.Var("x"), dep.Var("y")))
	res, err := certain.Answers(s, i, j, q, certain.Options{})
	if err != nil {
		t.Fatalf("enumeration: %v", err)
	}
	want := []rel.Tuple{{rel.Const("a"), rel.Const("a")}}
	if !res.SolutionExists || !reflect.DeepEqual(res.Answers, want) {
		t.Fatalf("enumeration on trap: %+v, want answers %v", res, want)
	}
	// The compiled path must refuse rather than report no answers.
	if _, err := Compile(s, q); ReasonOf(err) != FallbackMarkedHead {
		t.Fatalf("Compile(trap) = %v, want marked-head fallback", err)
	}
}

// TestSelfJoinOnExistential checks the Skolem discipline: joining two
// query atoms on an existential position must force the two triggers to
// coincide (equal universal bindings), not invent a join that no
// solution satisfies.
func TestSelfJoinOnExistential(t *testing.T) {
	s := &core.Setting{
		Name:   "skolem-join",
		Source: rel.SchemaOf("A", 1, "B", 1),
		Target: rel.SchemaOf("R", 2, "S", 2),
		ST: []dep.TGD{
			{
				Label: "st-r",
				Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
				Head:  []dep.Atom{dep.NewAtom("R", dep.Var("x"), dep.Var("u"))},
			},
			{
				Label: "st-s",
				Body:  []dep.Atom{dep.NewAtom("B", dep.Var("x"))},
				Head:  []dep.Atom{dep.NewAtom("S", dep.Var("x"), dep.Var("u"))},
			},
		},
	}
	i := rel.NewInstance()
	i.Add("A", rel.Const("a"))
	i.Add("A", rel.Const("b"))
	i.Add("B", rel.Const("a"))
	i.Freeze()
	j := rel.NewInstance()
	j.Freeze()

	// Same tgd, same existential: certain iff the universal bindings
	// can coincide — q(x,y) :- R(x,u), R(y,u) forces x = y.
	q := openQ("q", []string{"x", "y"},
		dep.NewAtom("R", dep.Var("x"), dep.Var("u")),
		dep.NewAtom("R", dep.Var("y"), dep.Var("u")))
	p := mustCompile(t, s, q)
	got, err := p.Eval(i, j, EvalOptions{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	want, err := certain.Answers(s, i, j, q, certain.Options{})
	if err != nil {
		t.Fatalf("enumeration: %v", err)
	}
	if !reflect.DeepEqual(got.Answers, want.Answers) {
		t.Fatalf("compiled %v != enumerated %v", got.Answers, want.Answers)
	}
	if len(got.Answers) != 2 {
		t.Fatalf("answers %v, want the two diagonal pairs", got.Answers)
	}

	// Different tgds: nulls never join — Boolean q :- R(x,u), S(y,u)
	// is not certain (keeping both nulls fresh separates them).
	qb := certain.UCQ{{Name: "qb", Body: []dep.Atom{
		dep.NewAtom("R", dep.Var("x"), dep.Var("u")),
		dep.NewAtom("S", dep.Var("y"), dep.Var("u")),
	}}}
	pb := mustCompile(t, s, qb)
	gotB, err := pb.Eval(i, j, EvalOptions{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	wantB, err := certain.Boolean(s, i, j, qb, certain.Options{})
	if err != nil {
		t.Fatalf("enumeration: %v", err)
	}
	if gotB.Certain != wantB.Certain || gotB.Certain {
		t.Fatalf("cross-tgd null join: compiled %v, enumerated %v, want not certain", gotB.Certain, wantB.Certain)
	}
}

// TestPlanString smoke-tests the offline rendering.
func TestPlanString(t *testing.T) {
	s := workload.LAVSetting()
	q := openQ("q", []string{"x", "g"}, dep.NewAtom("Rec", dep.Var("x"), dep.Var("g"), dep.Var("u")))
	p := mustCompile(t, s, q)
	out := p.String()
	for _, want := range []string{"plan q: open", "src:Person", "probe ts-member", "disjunct"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() = %q, missing %q", out, want)
		}
	}
}

// TestEvalCanceled checks that a canceled context surfaces as an error
// wrapping par.ErrCanceled rather than a truncated verdict.
func TestEvalCanceled(t *testing.T) {
	s := workload.LAVSetting()
	i, j := workload.LAVInstance(200, true, rand.New(rand.NewSource(3)))
	q := openQ("q", []string{"x", "g"}, dep.NewAtom("Rec", dep.Var("x"), dep.Var("g"), dep.Var("u")))
	p := mustCompile(t, s, q)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Eval(i, j, EvalOptions{Ctx: ctx}); err == nil || !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("canceled eval: err = %v, want ErrCanceled", err)
	}
}
