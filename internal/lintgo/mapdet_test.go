package lintgo

import "testing"

func TestMapdet(t *testing.T) {
	AnalysisTest(t, mapdetAnalyzer, "mapdet", "repro/x/mapdet")
}
