package lintgo

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// sentinelwrap keeps the error-sentinel contract intact: callers match
// cancellation and budget exhaustion with errors.Is(err,
// par.ErrCanceled) / errors.Is(err, core.ErrSearchBudget), so any code
// that reformats such an error must wrap it with %w. The analyzer
// flags:
//
//   - a sentinel error (an exported Err* variable from a repro
//     package, or context.Canceled / context.DeadlineExceeded) passed
//     to fmt.Errorf under a verb other than %w — the resulting error
//     no longer matches errors.Is;
//   - in the solver packages, a fresh errors.New / non-wrapping
//     fmt.Errorf whose text talks about cancellation or budgets —
//     a shadow sentinel that silently diverges from the real one.
var sentinelwrapAnalyzer = &Analyzer{
	Name: "sentinelwrap",
	Doc:  "sentinel errors must be wrapped with %w, never reformatted or shadowed",
	Run:  runSentinelwrap,
}

// sentinelShadowPackages are the packages where inventing a fresh
// cancel/budget error is flagged (the packages that own or forward the
// real sentinels).
var sentinelShadowPackages = map[string]bool{
	"repro/internal/chase":   true,
	"repro/internal/core":    true,
	"repro/internal/hom":     true,
	"repro/internal/uni":     true,
	"repro/internal/certain": true,
	"repro/pde":              true,
}

// shadowTextRE matches the states owned by the real sentinels
// (cancellation, exhausted budgets) without catching option-validation
// messages that merely mention the word "budget".
var shadowTextRE = regexp.MustCompile(`(?i)\b(cancell?ed|budget (exhausted|exceeded)|exhausted .*budget)\b`)

func runSentinelwrap(p *Pass) {
	shadowScope := sentinelShadowPackages[p.Path()]
	forEachFunc(p, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			switch {
			case isFuncNamed(fn, "fmt", "Errorf"):
				checkErrorf(p, call, shadowScope)
			case isFuncNamed(fn, "errors", "New") && shadowScope:
				if text, ok := constString(p.Info, call.Args[0]); ok && shadowTextRE.MatchString(text) {
					p.Reportf(call.Pos(), "errors.New(%q) creates a shadow sentinel; wrap the real cancellation/budget sentinel with %%w so errors.Is keeps matching", text)
				}
			}
			return true
		})
	})
}

// checkErrorf inspects one fmt.Errorf call for sentinel arguments
// under non-wrapping verbs, and (in shadow scope) for cancel/budget
// text with no %w at all.
func checkErrorf(p *Pass, call *ast.CallExpr, shadowScope bool) {
	if len(call.Args) == 0 {
		return
	}
	format, haveFormat := constString(p.Info, call.Args[0])
	verbs, verbsOK := []byte(nil), false
	if haveFormat {
		verbs, verbsOK = printfVerbs(format)
	}
	wraps := false
	if verbsOK {
		for _, v := range verbs {
			if v == 'w' {
				wraps = true
			}
		}
	}
	for i, arg := range call.Args[1:] {
		obj := usedObject(p.Info, arg)
		if !isSentinelError(obj) {
			continue
		}
		if !verbsOK {
			continue // indexed verbs: cannot match args to verbs
		}
		if i < len(verbs) && verbs[i] == 'w' {
			continue
		}
		p.Reportf(arg.Pos(), "sentinel %s.%s formatted without %%w; errors.Is on the result will no longer match — use %%w", obj.Pkg().Name(), obj.Name())
	}
	if shadowScope && haveFormat && verbsOK && !wraps && shadowTextRE.MatchString(format) {
		p.Reportf(call.Pos(), "fmt.Errorf(%q) creates a shadow sentinel; wrap the real cancellation/budget sentinel with %%w so errors.Is keeps matching", format)
	}
}

// isSentinelError reports whether obj is a sentinel error variable:
// an Err*-named package-level error from this module, or one of the
// context package's sentinels.
func isSentinelError(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	if !types.AssignableTo(v.Type(), errType) {
		return false
	}
	path := v.Pkg().Path()
	if path == "context" {
		return v.Name() == "Canceled" || v.Name() == "DeadlineExceeded"
	}
	return strings.HasPrefix(v.Name(), "Err") &&
		(path == "repro" || strings.HasPrefix(path, "repro/"))
}

// constString returns the constant string value of an expression.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
