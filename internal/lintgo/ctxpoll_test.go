package lintgo

import "testing"

func TestCtxpoll(t *testing.T) {
	AnalysisTest(t, ctxpollAnalyzer, "ctxpoll", "repro/internal/chase")
}

// TestCtxpollOutOfScope type-checks an unpolled loop under a
// non-engine import path: the analyzer must stay silent.
func TestCtxpollOutOfScope(t *testing.T) {
	AnalysisTest(t, ctxpollAnalyzer, "ctxpoll_scope", "repro/x/other")
}
