// Package lintgo is the Go-level static-analysis layer of the
// reproduction: a suite of analyzers, in the style of
// golang.org/x/tools/go/analysis, that statically enforce the
// invariants the engine's correctness rests on — freeze-before-share,
// deterministic map iteration, cancellation polling in unbounded
// loops, sentinel error wrapping, and the ban on ambient
// nondeterminism in chase-reachable packages. It is the engine behind
// `pdxlint` (cmd/pdxlint), which runs both standalone and as a
// `go vet -vettool` backend.
//
// The toolchain in this repository deliberately has no external module
// dependencies, so the framework is built on the standard library
// alone: packages are loaded through `go list -export` (load.go) and
// type-checked against compiler export data, mirroring exactly what
// `go vet` hands a vettool.
//
// Suppression: a diagnostic of analyzer <name> is suppressed by a
// comment of the form
//
//	//lint:ignore pdxlint/<name> reason
//
// on the flagged line or on the line immediately above it. The reason
// is mandatory; an ignore directive without one is itself reported.
package lintgo

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the analyzed source. The
// JSON shape mirrors internal/lint.Diagnostic (the `pdx vet` report),
// so `pdxlint -json` and `pdx vet -json` read the same.
type Diagnostic struct {
	// Check is the stable identifier "pdxlint/<analyzer>".
	Check string `json:"check"`
	// Severity is always "error" for lintgo: every finding is a broken
	// engine invariant, and CI gates on zero diagnostics.
	Severity string `json:"severity"`
	// File is the source file path.
	File string `json:"file,omitempty"`
	// Line and Col are 1-based.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message is the human-readable finding.
	Message string `json:"message"`

	pos token.Pos
}

// String renders the diagnostic in the conventional
// file:line:col: message [check] form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Check)
}

// Pass carries one analyzed package to an analyzer.
type Pass struct {
	// Fset positions every file of the package.
	Fset *token.FileSet
	// Files are the parsed source files (test files excluded; the
	// invariants target production code, and property tests use seeded
	// randomness legitimately).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checking results for the files.
	Info *types.Info

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Path returns the import path of the analyzed package. Analyzers that
// scope themselves to engine packages match against it.
func (p *Pass) Path() string { return p.Pkg.Path() }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Check:    "pdxlint/" + p.analyzer.Name,
		Severity: "error",
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		pos:      pos,
	})
}

// Analyzer is one static-analysis pass over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's stable name; diagnostics carry the check
	// ID "pdxlint/<name>" and suppressions reference it.
	Name string
	// Doc is a one-line description, shown by `pdxlint -h` and in the
	// vettool's -flags handshake.
	Doc string
	// Run inspects the pass and reports diagnostics via Reportf.
	Run func(*Pass)
}

// Analyzers returns the full suite in execution order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		frozenmutAnalyzer,
		mapdetAnalyzer,
		ctxpollAnalyzer,
		sentinelwrapAnalyzer,
		nondetAnalyzer,
		nilnessAnalyzer,
	}
}

// AnalyzerByName returns the named analyzer, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers runs the given analyzers over a loaded package and
// returns the surviving diagnostics, sorted by position, with
// //lint:ignore suppressions applied.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			analyzer: a,
			diags:    &diags,
		}
		a.Run(pass)
	}
	diags = applySuppressions(pkg, diags)
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file   string
	line   int // line the directive sits on
	check  string
	reason string
}

// applySuppressions drops diagnostics covered by a //lint:ignore
// pdxlint/<name> directive on the same line or the line above, and
// reports malformed directives (missing reason) as diagnostics of
// their own so they cannot silently rot.
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	var directives []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				d := ignoreDirective{file: position.Filename, line: position.Line}
				if len(fields) > 0 {
					d.check = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				if strings.HasPrefix(d.check, "pdxlint/") && d.reason == "" {
					diags = append(diags, Diagnostic{
						Check:    d.check,
						Severity: "error",
						File:     position.Filename,
						Line:     position.Line,
						Col:      position.Column,
						Message:  "lint:ignore directive needs a reason after the check name",
					})
					continue
				}
				directives = append(directives, d)
			}
		}
	}
	if len(directives) == 0 {
		return diags
	}
	suppressed := func(d Diagnostic) bool {
		for _, dir := range directives {
			if dir.check != d.Check || dir.file != d.File {
				continue
			}
			if dir.line == d.Line || dir.line == d.Line-1 {
				return true
			}
		}
		return false
	}
	out := diags[:0]
	for _, d := range diags {
		if !suppressed(d) {
			out = append(out, d)
		}
	}
	return out
}
