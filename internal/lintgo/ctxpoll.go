package lintgo

import (
	"go/ast"
	"go/types"
)

// ctxpoll enforces the cancellation discipline in the hot engine
// packages: an unbounded loop (`for { ... }`) must poll the context —
// directly (ctx.Err(), ctx.Done()) or by calling a same-package
// function that transitively does (st.ctxErr(), canceled(ctx, ...),
// the searcher's cancelSearch). Without a poll, a request deadline or
// a pdxd admission-control cancel cannot stop the chase or the
// homomorphism search, which is exactly the bug class PR 4's deadline
// machinery exists to prevent.
//
// The check is scoped to the packages with unbounded fixpoint loops:
// internal/hom, internal/chase, internal/core, internal/uni.
var ctxpollAnalyzer = &Analyzer{
	Name: "ctxpoll",
	Doc:  "unbounded for-loops in hot engine packages must poll the context",
	Run:  runCtxpoll,
}

// ctxpollPackages are the import paths the analyzer applies to.
var ctxpollPackages = map[string]bool{
	"repro/internal/hom":   true,
	"repro/internal/chase": true,
	"repro/internal/core":  true,
	"repro/internal/uni":   true,
}

func runCtxpoll(p *Pass) {
	if !ctxpollPackages[p.Path()] {
		return
	}
	polling := pollingFuncs(p)
	forEachFunc(p, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if !pollsContext(p, loop.Body, polling) {
				p.Reportf(loop.Pos(), "unbounded for-loop without a context poll; check Ctx (directly or via a polling helper) so deadlines and cancellation can stop it")
			}
			return true
		})
	})
}

// pollingFuncs computes, to a fixpoint, the same-package functions and
// methods whose bodies reach a direct context poll.
func pollingFuncs(p *Pass) map[*types.Func]bool {
	type fn struct {
		obj  *types.Func
		body *ast.BlockStmt
	}
	var fns []fn
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fn{obj, fd.Body})
		}
	}
	polling := make(map[*types.Func]bool)
	for _, f := range fns {
		if directCtxPoll(p, f.body) {
			polling[f.obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			if polling[f.obj] {
				continue
			}
			if callsPolling(p, f.body, polling) {
				polling[f.obj] = true
				changed = true
			}
		}
	}
	return polling
}

// directCtxPoll reports whether the node contains a .Err() or .Done()
// call on a context.Context value.
func directCtxPoll(p *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
			return !found
		}
		if t := p.Info.TypeOf(sel.X); t != nil && isContextType(t) {
			found = true
		}
		return !found
	})
	return found
}

// callsPolling reports whether the node calls any function in the
// polling set.
func callsPolling(p *Pass, n ast.Node, polling map[*types.Func]bool) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			if fn := calleeFunc(p.Info, call); fn != nil && polling[fn] {
				found = true
			}
		}
		return !found
	})
	return found
}

// pollsContext reports whether a loop body polls: directly, or through
// a call to a same-package polling function.
func pollsContext(p *Pass, body *ast.BlockStmt, polling map[*types.Func]bool) bool {
	return directCtxPoll(p, body) || callsPolling(p, body, polling)
}
