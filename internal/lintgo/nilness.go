package lintgo

import (
	"go/ast"
	"go/token"
	"go/types"
)

// nilness is a focused replacement for the x/tools nilness analyzer
// (unavailable here: the module has no external dependencies). It
// flags uses of a value inside the very branch that just established
// it is nil:
//
//	if inst == nil {
//	    return inst.Facts() // boom
//	}
//
// Tracked uses: pointer dereference and field access, method calls on
// nil interfaces, writes to nil maps, indexing nil slices, calling nil
// functions, and sending on nil channels. Tracking stops as soon as
// the variable is reassigned inside the branch, and nested function
// literals are skipped (they may run after a reassignment).
var nilnessAnalyzer = &Analyzer{
	Name: "nilness",
	Doc:  "no use of a value inside the branch that proved it nil",
	Run:  runNilness,
}

func runNilness(p *Pass) {
	forEachFunc(p, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			ifStmt, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			obj := nilComparedObject(p, ifStmt.Cond)
			if obj == nil {
				return true
			}
			checkNilBranch(p, ifStmt.Body, obj)
			return true
		})
	})
}

// nilComparedObject returns the variable x when cond is exactly
// `x == nil` (either operand order) and x has a nilable type.
func nilComparedObject(p *Pass, cond ast.Expr) types.Object {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return nil
	}
	operand := ast.Unparen(bin.X)
	if isNilIdent(p.Info, bin.X) {
		operand = ast.Unparen(bin.Y)
	} else if !isNilIdent(p.Info, bin.Y) {
		return nil
	}
	id, ok := operand.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return nil
	}
	switch obj.Type().Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Signature, *types.Chan, *types.Interface:
		return obj
	}
	return nil
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// checkNilBranch scans the then-block statement by statement, flagging
// uses of obj that panic on nil, until obj is reassigned or the block
// returns.
func checkNilBranch(p *Pass, body *ast.BlockStmt, obj types.Object) {
	for _, stmt := range body.List {
		reportNilUses(p, stmt, obj)
		if assignsObject(p.Info, stmt, obj) {
			return
		}
		if _, isReturn := stmt.(*ast.ReturnStmt); isReturn {
			return // statements after a top-level return are unreachable
		}
	}
}

// assignsObject reports whether the statement reassigns obj at its top
// level.
func assignsObject(info *types.Info, stmt ast.Stmt, obj types.Object) bool {
	assign, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range assign.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && info.Uses[id] == obj {
			return true
		}
	}
	return false
}

// reportNilUses flags the panicking uses of obj within one statement.
func reportNilUses(p *Pass, stmt ast.Stmt, obj types.Object) {
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && p.Info.Uses[id] == obj
	}
	if send, ok := stmt.(*ast.SendStmt); ok && isObj(send.Chan) {
		if _, isChan := obj.Type().Underlying().(*types.Chan); isChan {
			p.Reportf(send.Pos(), "send on %s, which is nil on this branch; a send on a nil channel blocks forever", obj.Name())
		}
	}
	mapWrites := map[*ast.IndexExpr]bool{}
	if assign, ok := stmt.(*ast.AssignStmt); ok {
		for _, lhs := range assign.Lhs {
			if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				mapWrites[idx] = true
			}
		}
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.StarExpr:
			if isObj(n.X) {
				p.Reportf(n.Pos(), "dereference of %s, which is nil on this branch", obj.Name())
			}
		case *ast.SelectorExpr:
			if !isObj(n.X) {
				return true
			}
			sel := p.Info.Selections[n]
			if sel == nil {
				return true
			}
			switch obj.Type().Underlying().(type) {
			case *types.Pointer:
				if sel.Kind() == types.FieldVal {
					p.Reportf(n.Pos(), "field access %s.%s, but %s is nil on this branch", obj.Name(), n.Sel.Name, obj.Name())
				}
			case *types.Interface:
				p.Reportf(n.Pos(), "method call on %s, which is a nil interface on this branch", obj.Name())
			}
		case *ast.IndexExpr:
			if !isObj(n.X) {
				return true
			}
			switch obj.Type().Underlying().(type) {
			case *types.Slice:
				p.Reportf(n.Pos(), "index of %s, which is a nil (empty) slice on this branch", obj.Name())
			case *types.Map:
				if mapWrites[n] {
					p.Reportf(n.Pos(), "assignment to entry of %s, which is a nil map on this branch", obj.Name())
				}
			}
		case *ast.CallExpr:
			if isObj(n.Fun) {
				if _, isFunc := obj.Type().Underlying().(*types.Signature); isFunc {
					p.Reportf(n.Pos(), "call of %s, which is a nil function on this branch", obj.Name())
				}
			}
		}
		return true
	})
}
