package lintgo

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the called function or method of a call
// expression to its types.Func, or nil (built-ins, function values,
// conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isFuncNamed reports whether fn is the function or method
// pkgPath.name (for methods, name is just the method name and the
// receiver's package is matched).
func isFuncNamed(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// objectIs reports whether obj is the package-level object
// pkgPath.name.
func objectIs(obj types.Object, pkgPath, name string) bool {
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// usedObject resolves an identifier or selector expression to the
// object it refers to, or nil.
func usedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// namedTypeIs reports whether t (or the pointee, if a pointer) is the
// named type pkgPath.name.
func namedTypeIs(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// rootIdentOf unwraps selectors, indexes, stars, and parens down to
// the base identifier of an expression (x in x.a.b[i]), or nil.
func rootIdentOf(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.CallExpr:
			e = v.Fun
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the object's declaration position
// lies within the node's source range.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && n.Pos() <= obj.Pos() && obj.Pos() < n.End()
}

// mentionsObject reports whether the expression tree references obj.
func mentionsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// looksLikeSort reports whether a call plausibly establishes a
// deterministic order: sort.* and slices.Sort* calls, plus any
// function whose name contains "sort" (sortTuples, sortDiagnostics —
// the codebase's local sorting helpers).
func looksLikeSort(info *types.Info, call *ast.CallExpr) bool {
	if fn := calleeFunc(info, call); fn != nil {
		if fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort":
				return true
			case "slices":
				return strings.HasPrefix(fn.Name(), "Sort") || fn.Name() == "SortFunc" || fn.Name() == "SortStableFunc"
			}
		}
		return strings.Contains(strings.ToLower(fn.Name()), "sort")
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return strings.Contains(strings.ToLower(id.Name), "sort")
	}
	return false
}

// printfVerbs extracts the verb letters of a printf-style format
// string, in argument order. Indexed arguments (%[1]d) return ok ==
// false: the caller should not attempt verb/argument matching.
func printfVerbs(format string) (verbs []byte, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width, precision.
		for i < len(format) && strings.IndexByte("+-# 0123456789.*", format[i]) >= 0 {
			if format[i] == '*' {
				verbs = append(verbs, '*') // consumes an argument
			}
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		if format[i] == '[' {
			return nil, false
		}
		verbs = append(verbs, format[i])
	}
	return verbs, true
}

// forEachFunc walks every function body in the pass: declarations and
// function literals, handing each to fn along with the enclosing
// function declaration (nil for literals outside any declaration).
func forEachFunc(p *Pass, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd, fd.Body)
			}
		}
	}
}
