// Package ctxpollscope holds an unpolled unbounded loop with no want
// comments: type-checked under a non-engine import path, the ctxpoll
// analyzer must stay silent.
package ctxpollscope

func spin() {
	n := 0
	for { // no diagnostic: package out of ctxpoll scope
		n++
		if n > 100 {
			return
		}
	}
}
