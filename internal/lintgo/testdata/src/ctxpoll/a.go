// Package ctxpoll exercises the cancellation-polling analyzer. The
// test type-checks it under an in-scope engine import path.
package ctxpoll

import "context"

func unpolled(ctx context.Context) int {
	i := 0
	for { // want `unbounded for-loop without a context poll`
		i++
		if i > 1000 {
			break
		}
	}
	_ = ctx
	return i
}

func directPoll(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
}

func selectPoll(ctx context.Context, ch chan int) int {
	total := 0
	for {
		select {
		case v := <-ch:
			total += v
		case <-ctx.Done():
			return total
		}
	}
}

type state struct{ ctx context.Context }

func (s *state) ctxErr() error { return s.ctx.Err() }

func (s *state) helperPoll() error {
	for {
		if err := s.ctxErr(); err != nil {
			return err
		}
	}
}

func (s *state) round() error { return s.ctxErr() }

func (s *state) transitivePoll() error {
	for {
		if err := s.round(); err != nil {
			return err
		}
	}
}

func (s *state) neverPolls() int {
	n := 0
	for { // want `unbounded for-loop without a context poll`
		n++
		if n > 10 {
			return n
		}
	}
}

func bounded(n int) int {
	total := 0
	for i := 0; i < n; i++ { // ok: not an unbounded loop
		total += i
	}
	return total
}
