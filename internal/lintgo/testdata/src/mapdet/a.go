// Package mapdet exercises the map-iteration-determinism analyzer.
package mapdet

import (
	"fmt"
	"sort"
)

func leakUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside range over map without a later sort`
	}
	return out
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: sorted below
	}
	sort.Strings(keys)
	return keys
}

func sortedByHelper(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: local sort helper below
	}
	sortKeys(keys)
	return keys
}

func sortKeys(ks []string) { sort.Strings(ks) }

func printInLoop(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `output written inside range over map`
	}
}

func countOnly(m map[string]int) int {
	n := 0
	for range m {
		n++ // ok: nothing order-dependent escapes
	}
	return n
}

func appendConstant(m map[string]int) []int {
	var out []int
	for range m {
		out = append(out, 1) // ok: appended value independent of iteration order
	}
	return out
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string)
	for k, v := range m {
		out[v] = k // ok: writes into a map, order-irrelevant
	}
	return out
}

func innerSliceRange(m map[string][]string) {
	for _, vs := range m {
		var local []string
		for _, v := range vs {
			local = append(local, v) // ok: slice iteration into a loop-local slice
		}
		_ = local
	}
}

func valueSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // ok: commutative accumulation
	}
	return total
}
