// Package suppressbad holds an ignore directive with no reason; the
// framework must report the directive itself and keep the underlying
// diagnostic alive.
package suppressbad

func missingReason(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:ignore pdxlint/mapdet
		out = append(out, k)
	}
	return out
}
