// Package sentinelwrap exercises the sentinel-wrapping analyzer. The
// test type-checks it under an in-scope solver import path so the
// shadow-sentinel rule applies.
package sentinelwrap

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/par"
)

func reformat(err error) error {
	if errors.Is(err, par.ErrCanceled) {
		return fmt.Errorf("search stopped: %v", par.ErrCanceled) // want `sentinel par.ErrCanceled formatted without %w`
	}
	return err
}

func wrapped(steps int) error {
	return fmt.Errorf("chase stopped after %d steps: %w", steps, par.ErrCanceled) // ok: %w keeps errors.Is matching
}

func stringified() string {
	return fmt.Errorf("got: %s", par.ErrCanceled).Error() // want `sentinel par.ErrCanceled formatted without %w`
}

func contextSentinel() error {
	return fmt.Errorf("deadline hit: %v", context.DeadlineExceeded) // want `sentinel context.DeadlineExceeded formatted without %w`
}

func shadowNew() error {
	return errors.New("chase canceled") // want `creates a shadow sentinel`
}

func shadowErrorf(n int) error {
	return fmt.Errorf("budget exhausted after %d steps", n) // want `creates a shadow sentinel`
}

func harmlessNew() error {
	return errors.New("no homomorphism found") // ok: unrelated text
}

func wrappedBudget(err error) error {
	return fmt.Errorf("chase budget exhausted: %w", err) // ok: wraps the underlying error
}

func validationMessage(budget int) error {
	return fmt.Errorf("chase budget %d must be positive", budget) // ok: option validation, not a sentinel state
}
