// Package nondet exercises the ambient-nondeterminism analyzer. The
// test type-checks it under an in-scope engine import path.
package nondet

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/hom"
	"repro/internal/rel"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `time.Now in an engine package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in an engine package`
}

func globalRand() int {
	return rand.Intn(10) // want `package-level rand.Intn uses the shared global source`
}

func seededRand(rng *rand.Rand) int {
	return rng.Intn(10) // ok: caller-seeded source
}

func newSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: constructors around an explicit seed
}

func unsortedCounts(inst *rel.Instance) []string {
	var names []string
	for name := range inst.TupleCounts() {
		names = append(names, name) // want `append to names inside range over map without a later sort`
	}
	return names
}

func sortedCounts(inst *rel.Instance) []string {
	var names []string
	for name := range inst.TupleCounts() {
		names = append(names, name) // ok: sorted below
	}
	sort.Strings(names)
	return names
}

func orderDependentCall(d hom.Delta) {
	for name, n := range d {
		record(name, n) // want `call consumes a loop variable of a range over hom.Delta`
	}
}

func record(string, int) {}

func deltaToMap(d hom.Delta) map[string]int {
	out := make(map[string]int)
	for name, n := range d {
		out[name] = n // ok: map write, order-irrelevant
	}
	return out
}

func deltaTotal(d hom.Delta) int {
	total := 0
	for _, n := range d {
		total += n // ok: commutative accumulation
	}
	return total
}
