// Package nondetscope holds wall-clock and global-rand calls and no
// expectations: type-checked under a non-engine import path (the
// bench harness, the server), nondet must stay silent.
package nondetscope

import (
	"math/rand"
	"time"
)

func benchTiming() (time.Time, int) {
	return time.Now(), rand.Intn(10) // no diagnostic: package out of engine scope
}
