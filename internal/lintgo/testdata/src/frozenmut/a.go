// Package frozenmut exercises the freeze-after-build analyzer.
package frozenmut

import (
	"repro/internal/par"
	"repro/internal/rel"
)

func freezeThenMutate() {
	inst := rel.NewInstance()
	inst.Add("R", rel.Const("a"))
	inst.Freeze()
	inst.Add("R", rel.Const("b")) // want `Add called on inst, frozen at line`
}

func freezeThenClone() {
	inst := rel.NewInstance()
	inst.Freeze()
	j := inst.Clone()
	j.Add("R", rel.Const("a")) // ok: the clone is mutable
}

func reassignClears() {
	inst := rel.NewInstance()
	inst.Freeze()
	inst = rel.NewInstance()
	inst.Add("R", rel.Const("a")) // ok: reassigned to a fresh instance
}

type holder struct{ inst *rel.Instance }

func fieldReceiver(s *holder) {
	s.inst.Freeze()
	s.inst.AddTuple("R", rel.Tuple{rel.Const("x")}) // want `AddTuple called on s.inst, frozen at line`
}

func mutateBeforeFreeze() {
	inst := rel.NewInstance()
	inst.Add("R", rel.Const("a")) // ok: not frozen yet
	inst.Freeze()
}

func parDoMutation(shared *rel.Instance) {
	par.Do(4, 2, 1, func(task int) {
		shared.Add("R", rel.Const("x")) // want `Add mutates captured instance shared inside a par.Do worker`
	})
}

func parDoLocalInstance() {
	par.Do(4, 2, 1, func(task int) {
		local := rel.NewInstance()
		local.Add("R", rel.Const("x")) // ok: declared inside the closure
	})
}

func firstRejectMutation(shared *rel.Instance) {
	par.FirstReject(4, 2, func(task int) bool {
		shared.AddAll(rel.NewInstance()) // want `AddAll mutates captured instance shared inside a par.FirstReject worker`
		return true
	})
}

func goMutation(shared *rel.Instance, done chan struct{}) {
	go func() {
		shared.AddFact(rel.Fact{}) // want `AddFact mutates captured instance shared inside a goroutine`
		close(done)
	}()
}

func goReadOnly(shared *rel.Instance, out chan int) {
	go func() {
		out <- shared.NumFacts() // ok: reads are safe on a frozen shared instance
	}()
}
