// Package sentinelwrapscope holds a shadow sentinel with no want
// comments: outside the solver packages the shadow rule must stay
// silent. The %w rule for real sentinels applies everywhere, so this
// file only uses plain errors.
package sentinelwrapscope

import "errors"

func localCancelError() error {
	return errors.New("operation canceled by user") // no diagnostic: package out of shadow scope
}
