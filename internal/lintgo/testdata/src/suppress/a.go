// Package suppress exercises //lint:ignore handling: every violation
// here carries a well-formed directive, so the suite must report
// nothing.
package suppress

func directiveAbove(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:ignore pdxlint/mapdet membership probe, order never observed
		out = append(out, k)
	}
	return out
}

func directiveSameLine(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //lint:ignore pdxlint/mapdet membership probe, order never observed
	}
	return out
}

func foreignDirective(m map[string]int) map[int]bool {
	out := make(map[int]bool)
	for _, v := range m {
		//lint:ignore S1036 staticcheck-style directive for another tool
		out[v] = true
	}
	return out
}
