// Package nilness exercises the nil-branch-use analyzer.
package nilness

type node struct {
	next *node
	val  int
}

func (n *node) len() int {
	if n == nil {
		return 0
	}
	return 1 + n.next.len()
}

func derefField(p *node) int {
	if p == nil {
		return p.val // want `field access p.val, but p is nil on this branch`
	}
	return p.val
}

func derefStar(p *int) int {
	if p == nil {
		return *p // want `dereference of p, which is nil on this branch`
	}
	return *p
}

func reversedOperands(p *node) int {
	if nil == p {
		return p.val // want `field access p.val, but p is nil on this branch`
	}
	return 0
}

func reassignedFirst(p *node) int {
	if p == nil {
		p = &node{}
		return p.val // ok: reassigned before use
	}
	return p.val
}

func nilMapWrite(m map[string]int) {
	if m == nil {
		m["x"] = 1 // want `assignment to entry of m, which is a nil map`
	}
}

func nilMapRead(m map[string]int) int {
	if m == nil {
		return m["x"] // ok: reads of nil maps are well-defined
	}
	return 0
}

func nilSliceIndex(s []int) int {
	if s == nil {
		return s[0] // want `index of s, which is a nil \(empty\) slice`
	}
	return s[0]
}

func nilFuncCall(f func() int) int {
	if f == nil {
		return f() // want `call of f, which is a nil function`
	}
	return f()
}

func nilChanSend(c chan int) {
	if c == nil {
		c <- 1 // want `send on c, which is nil on this branch`
	}
}

type reader interface{ read() int }

func nilInterfaceCall(r reader) int {
	if r == nil {
		return r.read() // want `method call on r, which is a nil interface`
	}
	return r.read()
}

func nilReceiverIdiom(p *node) int {
	if p == nil {
		return p.len() // ok: nil-receiver methods are a supported idiom
	}
	return p.len()
}

func guardReturns(p *node) int {
	if p == nil {
		return 0 // ok: plain guard
	}
	return p.val
}

func notNilBranch(p *node) int {
	if p != nil {
		return p.val // ok: branch proves non-nil
	}
	return 0
}

func deferredUse(p *node) func() int {
	if p == nil {
		return func() int { return p.val } // ok: closures are skipped, p may be set later
	}
	return nil
}
