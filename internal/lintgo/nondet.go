package lintgo

import (
	"go/ast"
	"go/types"
)

// nondet bans ambient nondeterminism from the packages the chase can
// reach. The engine's contract — PR 2's byte-identical parity suites,
// PR 5's resumable chase — requires that a run is a pure function of
// (setting, instance, options, seed). Inside the engine packages the
// analyzer flags:
//
//   - wall-clock reads: time.Now, time.Since, time.Until (deadlines
//     belong to the caller's context, timing to the bench harness);
//   - the global math/rand source: package-level rand.Intn,
//     rand.Shuffle, ... (a seeded *rand.Rand threaded from the caller
//     is fine, and is what oracle/graph already do);
//   - order-dependent iteration over the engine's count maps —
//     rel.Instance.TupleCounts() results and hom.Delta watermarks —
//     when a loop-derived value escapes into a slice without a sort,
//     into output, or into a function call.
var nondetAnalyzer = &Analyzer{
	Name: "nondet",
	Doc:  "no wall clocks, global rand, or unsorted count-map iteration in engine packages",
	Run:  runNondet,
}

// nondetPackages are the chase-reachable engine packages.
var nondetPackages = map[string]bool{
	"repro/internal/rel":        true,
	"repro/internal/dep":        true,
	"repro/internal/hom":        true,
	"repro/internal/chase":      true,
	"repro/internal/core":       true,
	"repro/internal/uni":        true,
	"repro/internal/certain":    true,
	"repro/internal/datalog":    true,
	"repro/internal/pdms":       true,
	"repro/internal/repair":     true,
	"repro/internal/oracle":     true,
	"repro/internal/reductions": true,
	"repro/internal/graph":      true,
}

func runNondet(p *Pass) {
	if !nondetPackages[p.Path()] {
		return
	}
	forEachFunc(p, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkAmbientCall(p, n)
			case *ast.RangeStmt:
				if countMap, ok := countMapRange(p, n); ok {
					checkCountMapRange(p, body, n, countMap)
				}
			}
			return true
		})
	})
}

// checkAmbientCall flags wall-clock and global-rand calls.
func checkAmbientCall(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			p.Reportf(call.Pos(), "time.%s in an engine package; wall-clock reads make runs irreproducible — deadlines come from the caller's Ctx, timing belongs to the bench harness", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() != nil {
			return // methods on a caller-seeded *rand.Rand are fine
		}
		switch fn.Name() {
		case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
			return // constructors around an explicit seed
		}
		p.Reportf(call.Pos(), "package-level rand.%s uses the shared global source; thread a seeded *rand.Rand from the caller instead", fn.Name())
	}
}

// countMapRange reports whether the range iterates one of the engine's
// count maps, and names it for the report.
func countMapRange(p *Pass, rng *ast.RangeStmt) (string, bool) {
	if t := p.Info.TypeOf(rng.X); t != nil && namedTypeIs(t, "repro/internal/hom", "Delta") {
		return "hom.Delta", true
	}
	if call, ok := ast.Unparen(rng.X).(*ast.CallExpr); ok {
		if fn := calleeFunc(p.Info, call); fn != nil && fn.Name() == "TupleCounts" {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && namedTypeIs(recv.Type(), relPkgPath, "Instance") {
				return "TupleCounts()", true
			}
		}
	}
	return "", false
}

// checkCountMapRange applies a stricter rule than mapdet to count-map
// iteration: beyond unsorted appends and output sinks, any call that
// consumes a loop variable is order-dependent work and is flagged.
// The canonical idiom — collect the relation names, sort, re-index —
// stays silent.
func checkCountMapRange(p *Pass, enclosing *ast.BlockStmt, rng *ast.RangeStmt, countMap string) {
	checkMapRange(p, enclosing, rng)
	loopVars := loopVarObjects(p.Info, rng)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if target, _ := appendTarget(p.Info, call); target != nil || looksLikeSort(p.Info, call) {
			return true
		}
		if _, ok := p.Info.Uses[identOf(call.Fun)].(*types.Builtin); ok {
			return true
		}
		for _, arg := range call.Args {
			for _, obj := range loopVars {
				if mentionsObject(p.Info, arg, obj) {
					p.Reportf(call.Pos(), "call consumes a loop variable of a range over %s; iteration order is nondeterministic — sort the relation names first", countMap)
					return false
				}
			}
		}
		return true
	})
}

// identOf returns the identifier of a call target, unwrapping parens
// and selectors.
func identOf(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}
