package lintgo

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// frozenmut enforces the freeze-after-build discipline on
// rel.Instance: once an instance is frozen it is shared freely across
// goroutines, so any mutating call after Freeze() panics at run time —
// but only on the code path that actually executes. The analyzer flags
// two shapes statically:
//
//   - a mutating method (Add, AddTuple, AddFact, AddAll,
//     RemoveLastTuple) called on a receiver that was frozen earlier in
//     the same function, unless the variable was reassigned (e.g. to a
//     Clone()) in between;
//   - a mutating method called inside a par.Do / par.FirstReject
//     closure or a go-statement on an instance declared outside the
//     closure: even an unfrozen instance must not be mutated from
//     worker goroutines.
var frozenmutAnalyzer = &Analyzer{
	Name: "frozenmut",
	Doc:  "no mutation of frozen or goroutine-shared rel.Instance values",
	Run:  runFrozenmut,
}

// instanceMutators are the rel.Instance methods that panic on a frozen
// receiver (see rel.Instance.mutable).
var instanceMutators = map[string]bool{
	"Add":             true,
	"AddTuple":        true,
	"AddFact":         true,
	"AddAll":          true,
	"RemoveLastTuple": true,
}

const relPkgPath = "repro/internal/rel"

// instanceMethodCall reports whether call is receiver.<name>() on a
// rel.Instance and returns the receiver expression.
func instanceMethodCall(info *types.Info, call *ast.CallExpr, name string) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != relPkgPath {
		return nil, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !namedTypeIs(recv.Type(), relPkgPath, "Instance") {
		return nil, false
	}
	return sel.X, true
}

// mutatorCall reports whether call is a mutating rel.Instance method
// and returns the receiver expression and method name.
func mutatorCall(info *types.Info, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !instanceMutators[sel.Sel.Name] {
		return nil, "", false
	}
	if recv, ok := instanceMethodCall(info, call, sel.Sel.Name); ok {
		return recv, sel.Sel.Name, true
	}
	return nil, "", false
}

// frozenEvent is one freeze / mutate / reassign occurrence, replayed
// in source order to decide which mutations hit a frozen receiver.
type frozenEvent struct {
	pos  token.Pos
	kind int // 0 freeze, 1 mutate, 2 reassign
	key  string
	name string // mutator method, for the report
}

func runFrozenmut(p *Pass) {
	forEachFunc(p, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		checkFreezeThenMutate(p, body)
	})
	checkParallelClosures(p)
}

// checkFreezeThenMutate replays freeze/mutate/reassign events of one
// function body in source order. Receivers are keyed by their printed
// expression (inst, s.inst, ...), which tracks the common shapes
// without alias analysis.
func checkFreezeThenMutate(p *Pass, body *ast.BlockStmt) {
	var events []frozenEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if recv, ok := instanceMethodCall(p.Info, n, "Freeze"); ok {
				events = append(events, frozenEvent{pos: n.Pos(), kind: 0, key: types.ExprString(recv)})
			} else if recv, name, ok := mutatorCall(p.Info, n); ok {
				events = append(events, frozenEvent{pos: n.Pos(), kind: 1, key: types.ExprString(recv), name: name})
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				events = append(events, frozenEvent{pos: n.Pos(), kind: 2, key: types.ExprString(lhs)})
			}
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	frozen := make(map[string]token.Pos)
	for _, e := range events {
		switch e.kind {
		case 0:
			frozen[e.key] = e.pos
		case 1:
			if at, ok := frozen[e.key]; ok {
				p.Reportf(e.pos, "%s called on %s, frozen at line %d; mutating a frozen instance panics — Clone() it first",
					e.name, e.key, p.Fset.Position(at).Line)
			}
		case 2:
			delete(frozen, e.key)
		}
	}
}

// checkParallelClosures flags instance mutations inside closures run
// by par.Do / par.FirstReject or go statements when the instance is
// declared outside the closure.
func checkParallelClosures(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p.Info, n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "repro/internal/par" {
					return true
				}
				if fn.Name() != "Do" && fn.Name() != "FirstReject" {
					return true
				}
				for _, arg := range n.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						checkClosureMutations(p, lit, "par."+fn.Name()+" worker")
					}
				}
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkClosureMutations(p, lit, "goroutine")
				}
				return false
			}
			return true
		})
	}
}

func checkClosureMutations(p *Pass, lit *ast.FuncLit, where string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, ok := mutatorCall(p.Info, call)
		if !ok {
			return true
		}
		root := rootIdentOf(recv)
		if root == nil {
			return true
		}
		obj := p.Info.Uses[root]
		if obj == nil || declaredWithin(obj, lit) {
			return true
		}
		p.Reportf(call.Pos(), "%s mutates captured instance %s inside a %s; instances shared with goroutines must be frozen, and frozen instances must not be mutated",
			name, types.ExprString(recv), where)
		return true
	})
}
