package lintgo

import "testing"

func TestNondet(t *testing.T) {
	AnalysisTest(t, nondetAnalyzer, "nondet", "repro/internal/chase")
}

// TestNondetOutOfScope checks that the bench harness and server side
// may keep their wall clocks.
func TestNondetOutOfScope(t *testing.T) {
	AnalysisTest(t, nondetAnalyzer, "nondet_scope", "repro/x/other")
}
