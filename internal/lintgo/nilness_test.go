package lintgo

import "testing"

func TestNilness(t *testing.T) {
	AnalysisTest(t, nilnessAnalyzer, "nilness", "repro/x/nilness")
}
