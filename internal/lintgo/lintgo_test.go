package lintgo

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestSuppression checks that well-formed //lint:ignore directives
// (same line or line above) silence the targeted analyzer and that
// directives for other tools are left alone.
func TestSuppression(t *testing.T) {
	AnalysisTest(t, mapdetAnalyzer, "suppress", "repro/x/suppress")
}

// TestSuppressionNeedsReason checks that an ignore directive without a
// reason is itself reported and does not suppress anything.
func TestSuppressionNeedsReason(t *testing.T) {
	dir := filepath.Join("testdata", "src", "suppress_bad")
	pkg, err := TypeCheck("repro/x/suppressbad", dir,
		[]string{filepath.Join(dir, "a.go")}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(pkg, []*Analyzer{mapdetAnalyzer})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (bad directive + undropped finding): %v", len(diags), diags)
	}
	var sawDirective, sawFinding bool
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "needs a reason"):
			sawDirective = true
		case strings.Contains(d.Message, "without a later sort"):
			sawFinding = true
		}
	}
	if !sawDirective || !sawFinding {
		t.Fatalf("missing expected diagnostics: %v", diags)
	}
}

// TestAnalyzerRegistry checks the suite's shape: stable names, docs,
// and lookup.
func TestAnalyzerRegistry(t *testing.T) {
	as := Analyzers()
	if len(as) < 5 {
		t.Fatalf("suite has %d analyzers, want at least 5", len(as))
	}
	seen := make(map[string]bool)
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if AnalyzerByName(a.Name) != a {
			t.Errorf("AnalyzerByName(%q) did not round-trip", a.Name)
		}
	}
	if AnalyzerByName("nope") != nil {
		t.Error("AnalyzerByName of unknown name should be nil")
	}
}

// TestLoadSelf loads this package through the go list pipeline — the
// same path cmd/pdxlint takes in standalone mode.
func TestLoadSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the build toolchain")
	}
	pkgs, err := Load(repoRoot(t), "./internal/lintgo")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if pkgs[0].ImportPath != "repro/internal/lintgo" {
		t.Fatalf("loaded %q", pkgs[0].ImportPath)
	}
	if len(pkgs[0].Files) == 0 {
		t.Fatal("no files loaded")
	}
	for _, name := range pkgs[0].GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			t.Fatalf("test file %s leaked into the load", name)
		}
	}
}
