package lintgo

import (
	"go/ast"
	"go/types"
)

// mapdet flags range statements over maps whose iteration order leaks
// into an ordered result: appending loop-derived values to a slice
// declared outside the loop with no deterministic sort afterwards, or
// writing output (fmt.Fprint*, Write*, Encode) inside the loop body.
// This is exactly the bug class the byte-identical parity suites exist
// to catch at run time; mapdet catches it at compile time.
//
// The canonical fix — collect the keys, sort them, then iterate — is
// recognized and not flagged: an append is fine when the slice is
// passed to a sort (sort.*, slices.Sort*, or any local helper whose
// name contains "sort") later in the same function.
var mapdetAnalyzer = &Analyzer{
	Name: "mapdet",
	Doc:  "map iteration order must not leak into slices or output without a sort",
	Run:  runMapdet,
}

func runMapdet(p *Pass) {
	forEachFunc(p, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(p, body, rng)
			return true
		})
	})
}

// loopVarObjects returns the objects of the range statement's key and
// value variables.
func loopVarObjects(info *types.Info, rng *ast.RangeStmt) []types.Object {
	var out []types.Object
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				out = append(out, obj)
			} else if obj := info.Uses[id]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// checkMapRange inspects one range-over-map statement for
// order-leaking appends and output writes. enclosing is the function
// body used for the sorted-later scan.
func checkMapRange(p *Pass, enclosing *ast.BlockStmt, rng *ast.RangeStmt) {
	loopVars := loopVarObjects(p.Info, rng)
	dependsOnLoop := func(n ast.Node) bool {
		for _, obj := range loopVars {
			if mentionsObject(p.Info, n, obj) {
				return true
			}
		}
		// A range with discarded variables (for range m) yields nothing
		// order-dependent.
		return false
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested map ranges report on their own.
			if n != rng {
				if t := p.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.CallExpr:
			if isOutputSink(p.Info, n) && dependsOnLoop(n) {
				p.Reportf(n.Pos(), "output written inside range over map; iteration order is nondeterministic — emit from sorted keys instead")
				return true
			}
			if target, appendArgs := appendTarget(p.Info, n); target != nil {
				if !declaredWithin(target, rng) && dependsOnLoopArgs(appendArgs, dependsOnLoop) {
					if !sortedAfter(p, enclosing, rng, target) {
						p.Reportf(n.Pos(), "append to %s inside range over map without a later sort; iteration order leaks into the slice", target.Name())
					}
				}
			}
		}
		return true
	})
}

func dependsOnLoopArgs(args []ast.Expr, dependsOnLoop func(ast.Node) bool) bool {
	for _, a := range args {
		if dependsOnLoop(a) {
			return true
		}
	}
	return false
}

// appendTarget recognizes s = append(s, ...) style calls and returns
// the slice's object and the appended arguments.
func appendTarget(info *types.Info, call *ast.CallExpr) (types.Object, []ast.Expr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return nil, nil
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil, nil
	}
	base := rootIdentOf(call.Args[0])
	if base == nil {
		return nil, nil
	}
	// Only variables accumulate across iterations; appending to a fresh
	// slice expression (append(make(...), ...)) is order-free.
	v, ok := info.Uses[base].(*types.Var)
	if !ok {
		return nil, nil
	}
	return v, call.Args[1:]
}

// isOutputSink reports whether the call writes externally visible
// output: fmt.Fprint*, fmt.Print*, or a method named Write*, Encode,
// or Marshal on any receiver.
func isOutputSink(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return true
		}
		return false
	}
	if fn.Type().(*types.Signature).Recv() == nil {
		return false
	}
	name := fn.Name()
	return name == "Encode" ||
		name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune"
}

// sortedAfter reports whether the slice object is passed to a
// sort-like call after the range statement, anywhere later in the
// function body.
func sortedAfter(p *Pass, enclosing *ast.BlockStmt, rng *ast.RangeStmt, slice types.Object) bool {
	sorted := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if looksLikeSort(p.Info, call) && mentionsObject(p.Info, call, slice) {
			sorted = true
			return false
		}
		return !sorted
	})
	return sorted
}
