package lintgo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes. It doubles as the decoder for the vet.cfg PackageFile map
// shape (see cmd/pdxlint).
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
}

// Load lists the packages matching patterns (relative to dir, "" for
// the current directory), builds export data for them and their
// dependencies, and returns the matched non-standard packages parsed
// and type-checked. Test files are excluded throughout: `go list`'s
// GoFiles field never includes them, which matches the suite's scope.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lintgo: go list: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lintgo: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		if t.Incomplete || len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, g := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, g)
		}
		pkg, err := TypeCheck(t.ImportPath, t.Dir, files, exports, nil)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// TypeCheck parses the given files and type-checks them as the package
// at importPath, resolving imports through compiler export data:
// exports maps a package path to its export file (as produced by
// `go list -export` or handed over in a vet.cfg), and importMap
// (optional) maps source-level import paths to package paths.
func TypeCheck(importPath, dir string, filenames []string, exports, importMap map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	var goFiles []string
	for _, name := range filenames {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lintgo: %v", err)
		}
		files = append(files, f)
		goFiles = append(goFiles, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lintgo: package %s has no non-test Go files", importPath)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: remappingImporter{
			underlying: importer.ForCompiler(fset, "gc", lookup),
			importMap:  importMap,
		},
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lintgo: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		GoFiles:    goFiles,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// remappingImporter rewrites source-level import paths through a
// vet.cfg ImportMap before delegating to the export-data importer. The
// gc importer caches by the path it is asked for, so the remap has to
// happen above it, not only inside the lookup function.
type remappingImporter struct {
	underlying types.Importer
	importMap  map[string]string
}

func (r remappingImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := r.importMap[path]; ok {
		path = mapped
	}
	return r.underlying.Import(path)
}

// ListExports runs `go list -export -deps` over the given import paths
// and returns the package-path → export-file map. The analysistest
// harness uses it to resolve the imports of testdata packages against
// the real repository packages.
func ListExports(dir string, importPaths ...string) (map[string]string, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps", "-json=ImportPath,Export",
	}, importPaths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lintgo: go list -export: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lintgo: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
