package lintgo

import "testing"

func TestSentinelwrap(t *testing.T) {
	AnalysisTest(t, sentinelwrapAnalyzer, "sentinelwrap", "repro/internal/chase")
}

// TestSentinelwrapOutOfScope checks that the shadow-sentinel rule is
// confined to the solver packages.
func TestSentinelwrapOutOfScope(t *testing.T) {
	AnalysisTest(t, sentinelwrapAnalyzer, "sentinelwrap_scope", "repro/x/other")
}
