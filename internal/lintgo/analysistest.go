package lintgo

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// AnalysisTest runs one analyzer over the testdata package in
// testdata/src/<pkgname> and checks its diagnostics against the
// `// want "regexp"` comments in the sources, in the style of
// golang.org/x/tools/go/analysis/analysistest:
//
//   - every line carrying a want comment must produce a diagnostic of
//     the analyzer matching each quoted regexp on that line;
//   - every diagnostic must be covered by a want comment.
//
// importPath is the package path the testdata is type-checked under;
// analyzers that scope themselves by import path (ctxpoll, nondet,
// sentinelwrap) are tested by checking the same sources under an
// in-scope and an out-of-scope path. Imports of testdata files resolve
// against the real repository packages via `go list -export`.
func AnalysisTest(t *testing.T, a *Analyzer, pkgname, importPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkgname)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading testdata dir: %v", err)
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}
	sort.Strings(filenames)

	// Resolve the testdata package's imports against the real module.
	imports, err := collectImports(filenames)
	if err != nil {
		t.Fatal(err)
	}
	var exports map[string]string
	if len(imports) > 0 {
		exports, err = ListExports(repoRoot(t), imports...)
		if err != nil {
			t.Fatal(err)
		}
	}

	pkg, err := TypeCheck(importPath, dir, filenames, exports, nil)
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(pkg, []*Analyzer{a})
	checkWants(t, pkg, diags)
}

// repoRoot walks up from the working directory to the go.mod root, so
// testdata imports resolve no matter which package runs the test.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// collectImports parses just the import clauses of the files.
func collectImports(filenames []string) ([]string, error) {
	fset := token.NewFileSet()
	seen := make(map[string]bool)
	var out []string
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("lintgo: %v", err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// want is one expectation parsed from a `// want "re"` comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// checkWants cross-checks diagnostics against want comments.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(text, -1)
				if len(matches) == 0 {
					t.Errorf("%s:%d: malformed want comment %q", position.Filename, position.Line, c.Text)
					continue
				}
				for _, m := range matches {
					pattern := m[1]
					if m[2] != "" {
						pattern = m[2]
					} else if m[1] != "" {
						if unq, err := strconv.Unquote(`"` + m[1] + `"`); err == nil {
							pattern = unq
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", position.Filename, position.Line, pattern, err)
						continue
					}
					wants = append(wants, &want{file: position.Filename, line: position.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}
