package lintgo

import "testing"

func TestFrozenmut(t *testing.T) {
	AnalysisTest(t, frozenmutAnalyzer, "frozenmut", "repro/x/frozenmut")
}
