package datalog_test

import (
	"math/rand"
	"testing"

	"repro/internal/datalog"
	"repro/internal/dep"
	"repro/internal/graph"
	"repro/internal/rel"
)

// tcProgram is the canonical transitive-closure program:
//
//	T(x,y) :- E(x,y)
//	T(x,z) :- T(x,y), E(y,z)
func tcProgram() *datalog.Program {
	return &datalog.Program{Rules: []datalog.Rule{
		{
			Label: "base",
			Head:  dep.NewAtom("T", dep.Var("x"), dep.Var("y")),
			Body:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("y"))},
		},
		{
			Label: "step",
			Head:  dep.NewAtom("T", dep.Var("x"), dep.Var("z")),
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y")), dep.NewAtom("E", dep.Var("y"), dep.Var("z"))},
		},
	}}
}

func tcSchema() *rel.Schema { return rel.SchemaOf("E", 2, "T", 2) }

func pathEDB(n int) *rel.Instance {
	edb := rel.NewInstance()
	for k := 0; k+1 < n; k++ {
		edb.Add("E", vtx(k), vtx(k+1))
	}
	return edb
}

func vtx(v int) rel.Value { return rel.Const(string(rune('a' + v))) }

func TestValidate(t *testing.T) {
	p := tcProgram()
	if err := p.Validate(tcSchema()); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	unsafe := &datalog.Program{Rules: []datalog.Rule{{
		Label: "unsafe",
		Head:  dep.NewAtom("T", dep.Var("x"), dep.Var("w")),
		Body:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("y"))},
	}}}
	if err := unsafe.Validate(tcSchema()); err == nil {
		t.Error("unsafe rule accepted")
	}
	badRel := &datalog.Program{Rules: []datalog.Rule{{
		Label: "bad",
		Head:  dep.NewAtom("Z", dep.Var("x")),
		Body:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("y"))},
	}}}
	if err := badRel.Validate(tcSchema()); err == nil {
		t.Error("unknown relation accepted")
	}
	empty := &datalog.Program{}
	if err := empty.Validate(tcSchema()); err == nil {
		t.Error("empty program accepted")
	}
	emptyBody := &datalog.Program{Rules: []datalog.Rule{{
		Label: "nb",
		Head:  dep.NewAtom("T", dep.Cst("a"), dep.Cst("b")),
	}}}
	if err := emptyBody.Validate(tcSchema()); err == nil {
		t.Error("empty body accepted")
	}
}

func TestTransitiveClosurePath(t *testing.T) {
	p := tcProgram()
	res, err := p.Eval(pathEDB(5), datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Path a-b-c-d-e: closure has n(n-1)/2 = 10 pairs.
	if res.Relation("T").Len() != 10 {
		t.Errorf("T has %d tuples, want 10:\n%s", res.Relation("T").Len(), res)
	}
	if !res.Contains(rel.Fact{Rel: "T", Args: rel.Tuple{vtx(0), vtx(4)}}) {
		t.Error("closure missing the long pair")
	}
	// The EDB is preserved.
	if res.Relation("E").Len() != 4 {
		t.Error("EDB mutated")
	}
}

func TestTransitiveClosureCycle(t *testing.T) {
	p := tcProgram()
	edb := pathEDB(4)
	edb.Add("E", vtx(3), vtx(0))
	res, err := p.Eval(edb, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Cycle: T = all 16 ordered pairs (including self-loops via the
	// cycle).
	if res.Relation("T").Len() != 16 {
		t.Errorf("T has %d tuples, want 16", res.Relation("T").Len())
	}
}

func TestIDB(t *testing.T) {
	idb := tcProgram().IDB()
	if !idb["T"] || idb["E"] || len(idb) != 1 {
		t.Errorf("IDB = %v", idb)
	}
}

func TestSemiNaiveAgreesWithNaive(t *testing.T) {
	p := tcProgram()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		g := graph.Random(7, 0.3, rng)
		edb := rel.NewInstance()
		for _, e := range g.Edges() {
			edb.Add("E", vtx(e[0]), vtx(e[1]))
		}
		if edb.IsEmpty() {
			continue
		}
		semi, err := p.Eval(edb, datalog.Options{})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := p.Naive(edb, datalog.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !semi.Equal(naive) {
			t.Fatalf("trial %d: semi-naive and naive disagree:\n%s\nvs\n%s", trial, semi, naive)
		}
	}
}

func TestSameGeneration(t *testing.T) {
	// sg(x,y) :- flat(x,y)
	// sg(x,y) :- up(x,u), sg(u,v), down(v,y)
	p := &datalog.Program{Rules: []datalog.Rule{
		{
			Label: "flat",
			Head:  dep.NewAtom("Sg", dep.Var("x"), dep.Var("y")),
			Body:  []dep.Atom{dep.NewAtom("Flat", dep.Var("x"), dep.Var("y"))},
		},
		{
			Label: "updown",
			Head:  dep.NewAtom("Sg", dep.Var("x"), dep.Var("y")),
			Body: []dep.Atom{
				dep.NewAtom("Up", dep.Var("x"), dep.Var("u")),
				dep.NewAtom("Sg", dep.Var("u"), dep.Var("v")),
				dep.NewAtom("Down", dep.Var("v"), dep.Var("y")),
			},
		},
	}}
	edb := rel.NewInstance()
	// Two-level tree: a,b children of p; c,d children of q; p,q flat.
	edb.Add("Up", rel.Const("a"), rel.Const("p"))
	edb.Add("Up", rel.Const("b"), rel.Const("p"))
	edb.Add("Up", rel.Const("c"), rel.Const("q"))
	edb.Add("Up", rel.Const("d"), rel.Const("q"))
	edb.Add("Flat", rel.Const("p"), rel.Const("q"))
	edb.Add("Down", rel.Const("p"), rel.Const("a"))
	edb.Add("Down", rel.Const("p"), rel.Const("b"))
	edb.Add("Down", rel.Const("q"), rel.Const("c"))
	edb.Add("Down", rel.Const("q"), rel.Const("d"))
	res, err := p.Eval(edb, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sg: (p,q) plus every child of p with every child of q: 1 + 4 = 5.
	if res.Relation("Sg").Len() != 5 {
		t.Errorf("Sg has %d tuples, want 5:\n%s", res.Relation("Sg").Len(), res)
	}
	if !res.Contains(rel.Fact{Rel: "Sg", Args: rel.Tuple{rel.Const("a"), rel.Const("d")}}) {
		t.Error("cousin pair missing")
	}
}

func TestConstantsInRules(t *testing.T) {
	p := &datalog.Program{Rules: []datalog.Rule{{
		Label: "flagged",
		Head:  dep.NewAtom("Bad", dep.Var("x"), dep.Cst("flagged")),
		Body:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Cst("root"))},
	}}}
	edb := rel.NewInstance()
	edb.Add("E", rel.Const("u1"), rel.Const("root"))
	edb.Add("E", rel.Const("u2"), rel.Const("leaf"))
	res, err := p.Eval(edb, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation("Bad").Len() != 1 {
		t.Errorf("Bad = %d tuples:\n%s", res.Relation("Bad").Len(), res)
	}
	if !res.Contains(rel.Fact{Rel: "Bad", Args: rel.Tuple{rel.Const("u1"), rel.Const("flagged")}}) {
		t.Error("constant head not emitted")
	}
}

func TestDerivationBudget(t *testing.T) {
	// A cross-product rule that derives n^2 facts trips a small budget.
	p := &datalog.Program{Rules: []datalog.Rule{{
		Label: "cross",
		Head:  dep.NewAtom("T", dep.Var("x"), dep.Var("y")),
		Body:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("a")), dep.NewAtom("E", dep.Var("y"), dep.Var("b"))},
	}}}
	edb := rel.NewInstance()
	for k := 0; k < 20; k++ {
		edb.Add("E", vtx(k%26), rel.Const("t"))
	}
	if _, err := p.Eval(edb, datalog.Options{MaxDerivations: 10}); err == nil {
		t.Error("budget not enforced in semi-naive eval")
	}
	if _, err := p.Naive(edb, datalog.Options{MaxDerivations: 10}); err == nil {
		t.Error("budget not enforced in naive eval")
	}
}

func TestRuleString(t *testing.T) {
	r := tcProgram().Rules[1]
	if got := r.String(); got != "T(x, z) :- T(x, y), E(y, z)" {
		t.Errorf("String = %q", got)
	}
}
