// Package datalog implements positive Datalog with semi-naive
// evaluation. It completes the peer data management model of Section 2
// of the peer data exchange paper: Halevy et al.'s PDMS allows
// *definitional mappings* — Datalog programs whose rules have single
// peer relations in heads and bodies — alongside the inclusion and
// equality mappings. The paper's PDE-to-PDMS translation uses no
// definitional mappings, but package pdms supports them through this
// engine so the full mapping language of [14] is representable.
package datalog

import (
	"fmt"

	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
)

// Rule is a positive Datalog rule head :- body. Safety requires every
// head variable to occur in the body.
type Rule struct {
	// Label identifies the rule in errors.
	Label string
	// Head is the derived atom.
	Head dep.Atom
	// Body is the conjunction of subgoals.
	Body []dep.Atom
}

// String renders the rule.
func (r Rule) String() string {
	s := r.Head.String() + " :- "
	for i, a := range r.Body {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s
}

// Validate checks safety and schema conformance.
func (r Rule) Validate(schema *rel.Schema) error {
	if len(r.Body) == 0 {
		return fmt.Errorf("datalog: rule %s has an empty body", r.Label)
	}
	atoms := append([]dep.Atom{r.Head}, r.Body...)
	for _, a := range atoms {
		ar, ok := schema.Arity(a.Rel)
		if !ok {
			return fmt.Errorf("datalog: rule %s: relation %s not in schema", r.Label, a.Rel)
		}
		if ar != len(a.Args) {
			return fmt.Errorf("datalog: rule %s: atom %s has %d arguments, relation has arity %d", r.Label, a, len(a.Args), ar)
		}
	}
	bodyVars := make(map[string]bool)
	for _, a := range r.Body {
		for _, v := range a.Vars() {
			bodyVars[v] = true
		}
	}
	for _, v := range r.Head.Vars() {
		if !bodyVars[v] {
			return fmt.Errorf("datalog: rule %s is unsafe: head variable %s not in body", r.Label, v)
		}
	}
	return nil
}

// Program is a set of positive Datalog rules.
type Program struct {
	Rules []Rule
}

// Validate checks every rule.
func (p *Program) Validate(schema *rel.Schema) error {
	if len(p.Rules) == 0 {
		return fmt.Errorf("datalog: empty program")
	}
	for _, r := range p.Rules {
		if err := r.Validate(schema); err != nil {
			return err
		}
	}
	return nil
}

// IDB returns the set of derived (intensional) relation names: those
// appearing in some rule head.
func (p *Program) IDB() map[string]bool {
	out := make(map[string]bool)
	for _, r := range p.Rules {
		out[r.Head.Rel] = true
	}
	return out
}

// Options configures evaluation.
type Options struct {
	// MaxDerivations bounds the number of derived facts; 0 means
	// 1,000,000. Positive Datalog always terminates, but the bound
	// keeps accidental cross products honest.
	MaxDerivations int
	// Hom configures the subgoal matching.
	Hom hom.Options
}

func (o Options) maxDerivations() int {
	if o.MaxDerivations > 0 {
		return o.MaxDerivations
	}
	return 1_000_000
}

// Eval computes the minimal model of the program over the given
// extensional database: the least fixpoint containing edb. The input is
// not mutated; the result holds edb plus every derived fact.
//
// Evaluation is semi-naive: each round matches every rule with at least
// one subgoal bound to the previous round's delta, so already-joined
// combinations are not re-derived.
func (p *Program) Eval(edb *rel.Instance, opts Options) (*rel.Instance, error) {
	full := edb.Clone()
	delta := edb.Clone()
	budget := opts.maxDerivations()
	derived := 0

	for delta.NumFacts() > 0 {
		next := rel.NewInstance()
		for _, r := range p.Rules {
			if err := fireSemiNaive(r, full, delta, next, opts, &derived, budget); err != nil {
				return nil, err
			}
		}
		// Move the genuinely new facts into full; they form the next
		// delta.
		delta = rel.NewInstance()
		for _, f := range next.Facts() {
			if full.AddFact(f) {
				delta.AddFact(f)
			}
		}
	}
	return full, nil
}

// fireSemiNaive derives the immediate consequences of rule r where at
// least one subgoal matches a delta fact. For each subgoal position we
// match that subgoal against delta and the remaining subgoals against
// full; duplicates across positions are deduplicated by the instance.
func fireSemiNaive(r Rule, full, delta, out *rel.Instance, opts Options, derived *int, budget int) error {
	for pivot := range r.Body {
		pivotAtom := r.Body[pivot]
		if delta.Relation(pivotAtom.Rel) == nil {
			continue
		}
		rest := make([]dep.Atom, 0, len(r.Body)-1)
		rest = append(rest, r.Body[:pivot]...)
		rest = append(rest, r.Body[pivot+1:]...)
		var evalErr error
		hom.ForEach([]dep.Atom{pivotAtom}, delta, nil, opts.Hom, func(b hom.Binding) bool {
			hom.ForEach(rest, full, b, opts.Hom, func(b2 hom.Binding) bool {
				t := make(rel.Tuple, len(r.Head.Args))
				for i, term := range r.Head.Args {
					if term.IsConst {
						t[i] = rel.Const(term.Name)
					} else {
						t[i] = b2[term.Name]
					}
				}
				if out.AddTuple(r.Head.Rel, t) {
					*derived++
					if *derived > budget {
						evalErr = fmt.Errorf("datalog: derivation budget of %d exceeded (rule %s)", budget, r.Label)
						return false
					}
				}
				return true
			})
			return evalErr == nil
		})
		if evalErr != nil {
			return evalErr
		}
	}
	return nil
}

// Naive evaluates the program by naive fixpoint iteration (every rule
// against the full instance each round). It exists as the reference
// implementation for differential tests and ablation benchmarks.
func (p *Program) Naive(edb *rel.Instance, opts Options) (*rel.Instance, error) {
	full := edb.Clone()
	budget := opts.maxDerivations()
	derived := 0
	for {
		added := false
		for _, r := range p.Rules {
			var bindings []hom.Binding
			hom.ForEach(r.Body, full, nil, opts.Hom, func(b hom.Binding) bool {
				bindings = append(bindings, b)
				return true
			})
			for _, b := range bindings {
				t := make(rel.Tuple, len(r.Head.Args))
				for i, term := range r.Head.Args {
					if term.IsConst {
						t[i] = rel.Const(term.Name)
					} else {
						t[i] = b[term.Name]
					}
				}
				if full.AddTuple(r.Head.Rel, t) {
					added = true
					derived++
					if derived > budget {
						return nil, fmt.Errorf("datalog: derivation budget of %d exceeded (rule %s)", budget, r.Label)
					}
				}
			}
		}
		if !added {
			return full, nil
		}
	}
}
