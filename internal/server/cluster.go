package server

// Cluster mode: consistent-hash routing of solve traffic across a
// static fleet of pdxd shards, over the snapshot wire format PR 8
// introduced for warm transfer.
//
// Every shard accepts every request. After a solve resolves its cache
// identity (setting hash, source hash, target hash), the shard looks
// the identity up on the ring (internal/cluster): the owner computes,
// everyone else proxies the request to the owner via the typed client
// with the instances inlined as canonical text. A proxied request
// carries client.ForwardedHeader, and a shard receiving that header
// always computes locally — the one-hop guard that keeps transiently
// disagreeing ring views from proxying in circles. The cluster-level
// single-flight follows from composition: the owner's chase cache is
// already single-flight per key, and proxied requests block on the
// owner's HTTP response, so one chase serves the whole fleet no matter
// how many shards the same request storm lands on.
//
// Membership is the static -cluster-peers list; liveness comes from a
// health-probe loop. On every ring change (a peer died or came back),
// each shard scans its cache for entries whose owner is now some other
// live shard and hands them off over the snapshot wire format
// (PUT /v1/cache/entries/{key}); the receiver re-validates exactly like
// a warm start. A shard whose owner is unreachable computes locally
// rather than failing the request — availability degrades to extra
// compute, never to an error the client can see.

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/snap"
	"repro/pde"
	"repro/pde/client"
)

// ClusterConfig enables sharded serving. The zero value of each field
// picks a sensible default; Self and Peers are required.
type ClusterConfig struct {
	// Self is the base URL this shard advertises to the fleet (its ring
	// identity), e.g. "http://10.0.0.1:8642".
	Self string
	// Peers is the static fleet membership (base URLs). It may or may
	// not include Self; membership cannot change at runtime, only
	// liveness can.
	Peers []string
	// VNodes is the virtual-node count per member; 0 means
	// cluster.DefaultVNodes.
	VNodes int
	// ProbeInterval is the health-probe period; 0 means 2s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe; 0 means 1s.
	ProbeTimeout time.Duration
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	return c
}

// clusterState is the runtime half of ClusterConfig: the ring, one
// forwarded client per peer, and the monitor goroutine's lifecycle.
type clusterState struct {
	cfg      ClusterConfig
	ring     *cluster.Ring
	peerURLs []string // sorted members minus self; the probe order
	clients  map[string]*client.Client
	stop     chan struct{}
	done     chan struct{}
}

// newClusterState validates the config and builds the ring. The local
// member starts alive, every peer starts dead until its first
// successful probe.
func newClusterState(cfg ClusterConfig) (*clusterState, error) {
	cfg = cfg.withDefaults()
	ring, err := cluster.New(cfg.Self, cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	st := &clusterState{
		cfg:     cfg,
		ring:    ring,
		clients: make(map[string]*client.Client),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, m := range ring.Members() {
		if m.Self {
			continue
		}
		st.peerURLs = append(st.peerURLs, m.URL)
		// Every cluster-internal request is forwarded-marked: proxies,
		// handoffs, and setting broadcasts must never trigger a second
		// hop or a re-broadcast on the receiving shard.
		st.clients[m.URL] = client.New(m.URL).Forwarded()
	}
	return st, nil
}

// clusterMonitor is the liveness loop: probe every peer, update the
// ring, and rebalance misplaced cache entries after every change. One
// goroutine per server; Close stops it.
func (s *Server) clusterMonitor() {
	defer close(s.cluster.done)
	t := time.NewTicker(s.cluster.cfg.ProbeInterval)
	defer t.Stop()
	s.clusterProbe()
	for {
		select {
		case <-s.cluster.stop:
			return
		case <-t.C:
			s.clusterProbe()
		}
	}
}

// clusterProbe runs one health round over the peers (in sorted order,
// so probe traffic is deterministic) and rebalances if the ring moved.
func (s *Server) clusterProbe() {
	changed := false
	for _, url := range s.cluster.peerURLs {
		ctx, cancel := context.WithTimeout(context.Background(), s.cluster.cfg.ProbeTimeout)
		_, err := s.cluster.clients[url].Health(ctx)
		cancel()
		if s.cluster.ring.SetAlive(url, err == nil) {
			changed = true
			s.met.clusterRingChanges.Add(1)
			s.cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, "cluster ring change",
				slog.String("peer", url), slog.Bool("alive", err == nil),
				slog.Uint64("version", s.cluster.ring.Version()),
				slog.Int("alive_members", s.cluster.ring.AliveCount()))
		}
	}
	if changed {
		s.clusterRebalance()
	}
}

// clusterRebalance hands off every completed cache entry whose owner is
// now another live shard, then drops the local copy. Runs only from the
// monitor goroutine, so scans never overlap. Failures leave the entry
// in place — the next ring change (or this peer's next death) retries.
func (s *Server) clusterRebalance() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, e := range s.cache.entries() {
		owner := s.cluster.ring.Owner(cluster.Key(e.settingID, e.srcID, e.tgtID))
		if owner == s.cluster.ring.Self() {
			continue
		}
		if !s.handoffEntry(ctx, owner, e) {
			continue
		}
		s.met.clusterHandoffs.Add(1)
		key := e.key
		s.cache.evictMatching(func(x *cacheEntry) bool { return x.key == key })
	}
}

// handoffEntry pushes one cache entry to its owner over the snapshot
// wire format. When the owner rejects it for lack of the setting, the
// setting is registered there (forwarded, so the owner does not
// re-broadcast) and the push retried once.
func (s *Server) handoffEntry(ctx context.Context, owner string, e *cacheEntry) bool {
	cl := s.cluster.clients[owner]
	se := snapEntry(e)
	if cl == nil || se == nil {
		return false
	}
	data, err := snap.Encode(se)
	if err != nil {
		s.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "handoff encode failed",
			slog.String("key", snapKeyOf(e)), slog.String("err", err.Error()))
		return false
	}
	key := snapKeyOf(e)
	err = cl.PushCacheEntry(ctx, key, data)
	var apiErr *client.APIError
	if errors.As(err, &apiErr) && apiErr.Code == client.CodeNotFound {
		if c := s.reg.Get(e.settingID); c != nil {
			if _, rerr := cl.Register(ctx, c.Text); rerr == nil {
				err = cl.PushCacheEntry(ctx, key, data)
			}
		}
	}
	if err != nil {
		s.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "handoff push failed",
			slog.String("key", key), slog.String("owner", owner), slog.String("err", err.Error()))
		return false
	}
	s.cfg.Logger.LogAttrs(ctx, slog.LevelInfo, "cache entry handed off",
		slog.String("key", key), slog.String("owner", owner))
	return true
}

// countOwnerCompute records a fleet-attributable chase: a cache-miss
// compute on a clustered shard (the ring made this shard responsible,
// or the forwarding guard did). Single-node daemons skip the counter —
// ownership is not a concept they have.
func (s *Server) countOwnerCompute() {
	if s.cluster != nil {
		s.met.clusterOwnerComputes.Add(1)
	}
}

// clusterOwner decides where a solve for the given cache identity runs.
// A nil client means local: single-node mode, this shard owns the key,
// or the request was already forwarded once (hop guard).
func (s *Server) clusterOwner(r *http.Request, settingID, srcID, tgtID string) (string, *client.Client) {
	if s.cluster == nil || r.Header.Get(client.ForwardedHeader) != "" {
		return "", nil
	}
	owner := s.cluster.ring.Owner(cluster.Key(settingID, srcID, tgtID))
	if owner == s.cluster.ring.Self() {
		return "", nil
	}
	return owner, s.cluster.clients[owner]
}

// proxyCall runs one forwarded request against the owner, healing the
// owner's missing setting (register, retry once) — the only not-found a
// fully inlined solve can produce.
func (s *Server) proxyCall(ctx context.Context, cl *client.Client, c *Compiled, call func() error) error {
	err := call()
	var apiErr *client.APIError
	if errors.As(err, &apiErr) && apiErr.Code == client.CodeNotFound {
		if _, rerr := cl.Register(ctx, c.Text); rerr == nil {
			err = call()
		}
	}
	return err
}

// finishProxy reports a proxied outcome to the caller. A transport
// failure (owner unreachable; no APIError to relay) returns false and
// writes nothing — the caller computes locally, and the monitor marks
// the peer dead on its next probe. Owner-side API errors relay as-is:
// the owner already computed (or refused) authoritatively.
func (s *Server) finishProxy(w http.ResponseWriter, r *http.Request, owner string, err error, write func()) bool {
	if err == nil {
		s.met.clusterProxied.Add(1)
		write()
		return true
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		s.met.clusterProxied.Add(1)
		writeErr(w, apiErr.Status, apiErr.Code, "%s", apiErr.Message)
		return true
	}
	s.cfg.Logger.LogAttrs(r.Context(), slog.LevelWarn, "cluster proxy failed, computing locally",
		slog.String("owner", owner), slog.String("err", err.Error()))
	return false
}

// proxyDeadline bounds a proxied round trip: the owner applies the
// request's own solve deadline, this margin covers the extra hop.
func (s *Server) proxyDeadline(requestedMillis int64) time.Duration {
	return s.deadline(requestedMillis) + 5*time.Second
}

// proxyExists relays an exists-solution request to the owner with the
// resolved instances inlined as canonical text (the owner hashes them
// back to the same cache identity, whether or not it has them
// registered). Reports whether the response was written.
func (s *Server) proxyExists(w http.ResponseWriter, r *http.Request, owner string, cl *client.Client, c *Compiled, p *solvePair, req client.SolveRequest) bool {
	ctx, cancel := context.WithTimeout(r.Context(), s.proxyDeadline(req.DeadlineMillis))
	defer cancel()
	fwd := req
	fwd.Source, fwd.SourceID = pde.FormatInstance(p.i), ""
	fwd.Target, fwd.TargetID = pde.FormatInstance(p.j), ""
	var out client.SolveResponse
	err := s.proxyCall(ctx, cl, c, func() (cerr error) {
		out, cerr = cl.ExistsSolution(ctx, fwd)
		return cerr
	})
	return s.finishProxy(w, r, owner, err, func() { writeJSON(w, http.StatusOK, out) })
}

// proxyCertain relays a certain-answers request to the owner.
func (s *Server) proxyCertain(w http.ResponseWriter, r *http.Request, owner string, cl *client.Client, c *Compiled, p *solvePair, req client.CertainRequest) bool {
	ctx, cancel := context.WithTimeout(r.Context(), s.proxyDeadline(req.DeadlineMillis))
	defer cancel()
	fwd := req
	fwd.Source, fwd.SourceID = pde.FormatInstance(p.i), ""
	fwd.Target, fwd.TargetID = pde.FormatInstance(p.j), ""
	var out client.CertainResponse
	err := s.proxyCall(ctx, cl, c, func() (cerr error) {
		out, cerr = cl.CertainAnswers(ctx, fwd)
		return cerr
	})
	return s.finishProxy(w, r, owner, err, func() { writeJSON(w, http.StatusOK, out) })
}

// proxyCertainBatch relays a batch certain-answers request to the
// owner.
func (s *Server) proxyCertainBatch(w http.ResponseWriter, r *http.Request, owner string, cl *client.Client, c *Compiled, p *solvePair, req client.CertainBatchRequest) bool {
	ctx, cancel := context.WithTimeout(r.Context(), s.proxyDeadline(req.DeadlineMillis))
	defer cancel()
	fwd := req
	fwd.Source, fwd.SourceID = pde.FormatInstance(p.i), ""
	fwd.Target, fwd.TargetID = pde.FormatInstance(p.j), ""
	var out client.CertainBatchResponse
	err := s.proxyCall(ctx, cl, c, func() (cerr error) {
		out, cerr = cl.CertainBatch(ctx, fwd)
		return cerr
	})
	return s.finishProxy(w, r, owner, err, func() { writeJSON(w, http.StatusOK, out) })
}

// clusterBroadcastSetting pushes a freshly registered setting to every
// live peer, so proxied and handed-off traffic lands on shards that
// already know it. Best-effort: a peer that misses the broadcast is
// healed on first contact by proxyCall/handoffEntry's register-retry.
func (s *Server) clusterBroadcastSetting(r *http.Request, c *Compiled) {
	if s.cluster == nil || r.Header.Get(client.ForwardedHeader) != "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, url := range s.cluster.peerURLs {
		if !s.cluster.ring.Alive(url) {
			continue
		}
		if _, err := s.cluster.clients[url].Register(ctx, c.Text); err != nil {
			s.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "setting broadcast failed",
				slog.String("peer", url), slog.String("id", c.ID), slog.String("err", err.Error()))
		}
	}
}

// emptyInstanceID is the content hash of the empty instance — the
// target-side identity of every solve that omits its target.
var emptyInstanceID = sync.OnceValue(func() string {
	inst, err := pde.ParseInstance("")
	if err != nil {
		// The empty text is always parsable; reaching this is a parser
		// regression, not a runtime condition.
		panic("server: parsing the empty instance: " + err.Error())
	}
	return instanceID(pde.FormatInstance(inst))
})

// handleClusterStatus reports this shard's ring view, and resolves an
// owner when the query carries a cache identity (setting_id plus
// source_id; target_id defaults to the empty instance).
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	var out client.ClusterStatusResponse
	if s.cluster == nil {
		writeJSON(w, http.StatusOK, out)
		return
	}
	out.Enabled = true
	out.Self = s.cluster.ring.Self()
	out.Version = s.cluster.ring.Version()
	for _, m := range s.cluster.ring.Members() {
		out.Members = append(out.Members, client.ClusterMemberStatus{URL: m.URL, Alive: m.Alive, Self: m.Self})
	}
	q := r.URL.Query()
	if sid, src := q.Get("setting_id"), q.Get("source_id"); sid != "" && src != "" {
		tgt := q.Get("target_id")
		if tgt == "" {
			tgt = emptyInstanceID()
		}
		out.Owner = s.cluster.ring.Owner(cluster.Key(sid, src, tgt))
	}
	writeJSON(w, http.StatusOK, out)
}
