// Package server implements pdxd, the PDE serving daemon behind
// `pdx serve`: an HTTP/JSON API over a compiled-setting registry, with
// per-request deadlines threaded into the solver hot loops, bounded
// admission of concurrent solves, and dependency-free observability
// (structured logs, /healthz, /metrics).
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/pde"
)

// Compiled is a setting after one-time compilation: parsed, vetted,
// classified, and formatted to canonical text. Everything in it is
// immutable after registration, so handlers read it without locks.
type Compiled struct {
	// ID is "sha256:" plus the hex digest of the canonical text, so the
	// same setting always lands on the same ID regardless of source
	// formatting.
	ID string
	// Name is the setting's declared name.
	Name string
	// Text is the canonical text (pde.FormatSetting output).
	Text string
	// Setting is the compiled form used by solves.
	Setting *pde.Setting
	// Report is the C_tract classification computed at registration.
	Report pde.CtractReport
	// Strategy is the algorithm solves will use, as a wire string.
	Strategy string
	// Warnings counts non-error vet diagnostics seen at registration.
	Warnings int
	// Plan is the compiled certain-answer setting plan (origin table
	// plus solution probes), non-nil when the setting is in the
	// compilable C_tract fragment; certain-answer requests then skip the
	// chase entirely.
	Plan *pde.SettingPlan
	// PlanFallback is why Plan is nil ("" when it is set); surfaced as
	// the fallback_reason of certain-answer responses and a metric
	// label.
	PlanFallback string
}

// Registry is the concurrent compiled-setting store. Registration is
// idempotent by content hash; lookups are read-locked and return the
// shared immutable Compiled.
type Registry struct {
	mu    sync.RWMutex
	byID  map[string]*Compiled
	order []string // registration order, for deterministic listings
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*Compiled)}
}

// Compile parses, vets, and classifies setting text without touching
// any registry. A vet error rejects the setting (the daemon refuses to
// serve settings its own static analysis calls broken).
func Compile(src string) (*Compiled, error) {
	s, err := pde.ParseSetting(src)
	if err != nil {
		return nil, fmt.Errorf("parsing setting: %w", err)
	}
	report := pde.Vet(src, "<register>")
	if report.HasErrors() {
		for _, d := range report.Diagnostics {
			if d.Severity == pde.SeverityError {
				return nil, fmt.Errorf("vet: %s: %s", d.Check, d.Message)
			}
		}
	}
	_, warns, _ := report.Counts()
	cls := pde.Classify(s)
	strategy := string(pde.StrategyGeneric)
	if cls.InCtract {
		strategy = string(pde.StrategyTractable)
	}
	text := pde.FormatSetting(s)
	sum := sha256.Sum256([]byte(text))
	c := &Compiled{
		ID:       "sha256:" + hex.EncodeToString(sum[:]),
		Name:     s.Name,
		Text:     text,
		Setting:  s,
		Report:   cls,
		Strategy: strategy,
		Warnings: warns,
	}
	plan, err := pde.CompileSettingPlan(s)
	if err != nil {
		reason := pde.CompiledFallbackReason(err)
		if reason == "" {
			// Not a fragment refusal: the setting already passed Validate,
			// so this is unreachable; refuse registration rather than mask
			// it.
			return nil, fmt.Errorf("compiling certain-answer plan: %w", err)
		}
		c.PlanFallback = reason
		return c, nil
	}
	c.Plan = plan
	return c, nil
}

// Register compiles the setting and stores it under its content hash.
// Re-registering an already-present setting is a no-op that returns the
// existing entry with created=false.
func (r *Registry) Register(src string) (c *Compiled, created bool, err error) {
	c, err = Compile(src)
	if err != nil {
		return nil, false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.byID[c.ID]; ok {
		return have, false, nil
	}
	r.byID[c.ID] = c
	r.order = append(r.order, c.ID)
	return c, true, nil
}

// Get returns the compiled setting for an ID, or nil.
func (r *Registry) Get(id string) *Compiled {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byID[id]
}

// List returns the registered settings in registration order.
func (r *Registry) List() []*Compiled {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Compiled, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.byID[id])
	}
	return out
}

// Evict removes a setting; it reports whether the ID was present.
// In-flight solves against the evicted setting finish unaffected (they
// hold the immutable Compiled, not the registry slot).
func (r *Registry) Evict(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[id]; !ok {
		return false
	}
	delete(r.byID, id)
	for i, have := range r.order {
		if have == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return true
}

// Len returns the number of registered settings.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}
