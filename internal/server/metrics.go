package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/chase"
	"repro/internal/qplan"
)

// fallbackLabels are the reason labels of
// pdxd_chase_cache_fallbacks_total, in exposition order. The first
// three mirror the chase.Fallback* constants; everything else
// aggregates under "other".
var fallbackLabels = [...]string{
	chase.FallbackEgd,
	chase.FallbackFailed,
	chase.FallbackOblivious,
	"other",
}

// fallback returns the counter for a chase fallback reason, mapping
// unknown reasons to "other".
func (m *metrics) fallback(reason string) *atomic.Int64 {
	for i, l := range fallbackLabels[:len(fallbackLabels)-1] {
		if reason == l {
			return &m.cacheFallbacks[i]
		}
	}
	return &m.cacheFallbacks[len(fallbackLabels)-1]
}

// compiledFallbackLabels are the reason labels of
// pdxd_certain_compiled_fallbacks_total: the qplan fallback taxonomy
// plus "other" for anything unexpected.
var compiledFallbackLabels = append(append([]string{}, qplan.FallbackReasons...), "other")

// compiledFallback returns the counter for a compiled-path fallback
// reason, mapping unknown reasons to "other".
func (m *metrics) compiledFallback(reason string) *atomic.Int64 {
	for i, l := range compiledFallbackLabels[:len(compiledFallbackLabels)-1] {
		if reason == l {
			return &m.compiledFallbacks[i]
		}
	}
	return &m.compiledFallbacks[len(compiledFallbackLabels)-1]
}

// metrics holds the daemon's counters and gauges, exposed in Prometheus
// text format on /metrics without any external dependency. Gauges that
// move on every request are atomics; the per-route/status counters sit
// behind a mutex-guarded map (two map operations per request, noise
// next to a solve).
type metrics struct {
	inFlight   atomic.Int64 // solves currently executing
	queueDepth atomic.Int64 // solves waiting for an admission slot
	shed       atomic.Int64 // requests rejected by admission control
	nodes      atomic.Int64 // cumulative generic-solver search nodes

	cacheHits      atomic.Int64 // solves served from a cached chased artifact
	cacheMisses    atomic.Int64 // solves that had to chase from scratch
	cacheResumes   atomic.Int64 // append migrations that resumed incrementally
	cacheEvictions atomic.Int64 // cache entries dropped (LRU or explicit)

	// cacheFallbacks counts append migrations that re-chased fully,
	// split by the chase's fallback reason (indexed per fallbackLabels):
	// an egd blocks the incremental path, the previous chase failed, the
	// chase is oblivious, or anything else (no previous result,
	// unsupported dependency kinds).
	cacheFallbacks [len(fallbackLabels)]atomic.Int64

	planHits   atomic.Int64 // certain-answer requests served by a cached compiled plan
	planMisses atomic.Int64 // compiled plans built (and cached) on demand
	// compiledFallbacks counts certain-answer requests that fell back
	// from the compiled path to solution enumeration, by qplan fallback
	// reason (indexed per compiledFallbackLabels; sized in newMetrics).
	compiledFallbacks []atomic.Int64

	snapshotSaves      atomic.Int64 // snapshots written to the store
	snapshotLoads      atomic.Int64 // snapshots loaded and installed at warm start
	snapshotLoadErrors atomic.Int64 // snapshots rejected at load (corrupt, unregistered, mismatched)
	warmTransfers      atomic.Int64 // snapshots pulled from a peer and installed

	clusterProxied       atomic.Int64 // solves forwarded to (and answered by) the owning shard
	clusterOwnerComputes atomic.Int64 // chases computed here as the ring owner (cache misses while clustered)
	clusterHandoffs      atomic.Int64 // cache entries pushed to their new owner after a ring change
	clusterRingChanges   atomic.Int64 // liveness transitions observed on the ring

	mu        sync.Mutex
	requests  map[string]int64 // route|status -> count
	durMillis map[string]int64 // route -> cumulative handler milliseconds
	durCount  map[string]int64 // route -> observations
}

func newMetrics() *metrics {
	return &metrics{
		compiledFallbacks: make([]atomic.Int64, len(compiledFallbackLabels)),
		requests:          make(map[string]int64),
		durMillis:         make(map[string]int64),
		durCount:          make(map[string]int64),
	}
}

// observe records one completed request.
func (m *metrics) observe(route string, status int, millis int64) {
	m.mu.Lock()
	m.requests[fmt.Sprintf("%s|%d", route, status)]++
	m.durMillis[route] += millis
	m.durCount[route]++
	m.mu.Unlock()
}

// render writes the Prometheus text exposition. Families are emitted in
// a fixed order and series in sorted label order, so scrapes are
// deterministic.
func (m *metrics) render(registrySize, instanceCount, cacheEntries int, cacheBytes int64) string {
	var b strings.Builder
	b.WriteString("# HELP pdxd_requests_total Requests served, by route and HTTP status.\n")
	b.WriteString("# TYPE pdxd_requests_total counter\n")
	m.mu.Lock()
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		route, status, _ := strings.Cut(k, "|")
		fmt.Fprintf(&b, "pdxd_requests_total{route=%q,status=%q} %d\n", route, status, m.requests[k])
	}
	b.WriteString("# HELP pdxd_request_duration_milliseconds Cumulative handler time, by route.\n")
	b.WriteString("# TYPE pdxd_request_duration_milliseconds counter\n")
	routes := make([]string, 0, len(m.durCount))
	for k := range m.durCount {
		routes = append(routes, k)
	}
	sort.Strings(routes)
	for _, r := range routes {
		fmt.Fprintf(&b, "pdxd_request_duration_milliseconds_sum{route=%q} %d\n", r, m.durMillis[r])
		fmt.Fprintf(&b, "pdxd_request_duration_milliseconds_count{route=%q} %d\n", r, m.durCount[r])
	}
	m.mu.Unlock()

	fmt.Fprintf(&b, "# HELP pdxd_in_flight_solves Solves currently executing.\n# TYPE pdxd_in_flight_solves gauge\npdxd_in_flight_solves %d\n", m.inFlight.Load())
	fmt.Fprintf(&b, "# HELP pdxd_queue_depth Solves waiting for an admission slot.\n# TYPE pdxd_queue_depth gauge\npdxd_queue_depth %d\n", m.queueDepth.Load())
	fmt.Fprintf(&b, "# HELP pdxd_shed_total Requests rejected by admission control.\n# TYPE pdxd_shed_total counter\npdxd_shed_total %d\n", m.shed.Load())
	fmt.Fprintf(&b, "# HELP pdxd_solver_nodes_total Cumulative generic-solver search nodes.\n# TYPE pdxd_solver_nodes_total counter\npdxd_solver_nodes_total %d\n", m.nodes.Load())
	fmt.Fprintf(&b, "# HELP pdxd_registry_settings Registered settings.\n# TYPE pdxd_registry_settings gauge\npdxd_registry_settings %d\n", registrySize)
	fmt.Fprintf(&b, "# HELP pdxd_instances Registered instances.\n# TYPE pdxd_instances gauge\npdxd_instances %d\n", instanceCount)
	fmt.Fprintf(&b, "# HELP pdxd_chase_cache_hits_total Solves served from a cached chased artifact.\n# TYPE pdxd_chase_cache_hits_total counter\npdxd_chase_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintf(&b, "# HELP pdxd_chase_cache_misses_total Solves that chased from scratch.\n# TYPE pdxd_chase_cache_misses_total counter\npdxd_chase_cache_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintf(&b, "# HELP pdxd_chase_cache_resumes_total Append migrations that resumed the chase incrementally.\n# TYPE pdxd_chase_cache_resumes_total counter\npdxd_chase_cache_resumes_total %d\n", m.cacheResumes.Load())
	b.WriteString("# HELP pdxd_chase_cache_fallbacks_total Append migrations that re-chased fully, by fallback reason.\n# TYPE pdxd_chase_cache_fallbacks_total counter\n")
	for i, l := range fallbackLabels {
		fmt.Fprintf(&b, "pdxd_chase_cache_fallbacks_total{reason=%q} %d\n", l, m.cacheFallbacks[i].Load())
	}
	fmt.Fprintf(&b, "# HELP pdxd_chase_cache_evictions_total Cache entries dropped by LRU bounds or explicit eviction.\n# TYPE pdxd_chase_cache_evictions_total counter\npdxd_chase_cache_evictions_total %d\n", m.cacheEvictions.Load())
	fmt.Fprintf(&b, "# HELP pdxd_chase_cache_entries Cached chased artifacts.\n# TYPE pdxd_chase_cache_entries gauge\npdxd_chase_cache_entries %d\n", cacheEntries)
	fmt.Fprintf(&b, "# HELP pdxd_chase_cache_bytes Approximate bytes held by the chase cache.\n# TYPE pdxd_chase_cache_bytes gauge\npdxd_chase_cache_bytes %d\n", cacheBytes)
	fmt.Fprintf(&b, "# HELP pdxd_plan_cache_hits_total Certain-answer requests served by a cached compiled plan.\n# TYPE pdxd_plan_cache_hits_total counter\npdxd_plan_cache_hits_total %d\n", m.planHits.Load())
	fmt.Fprintf(&b, "# HELP pdxd_plan_cache_misses_total Compiled plans built on demand.\n# TYPE pdxd_plan_cache_misses_total counter\npdxd_plan_cache_misses_total %d\n", m.planMisses.Load())
	b.WriteString("# HELP pdxd_certain_compiled_fallbacks_total Certain-answer requests that fell back to solution enumeration, by reason.\n# TYPE pdxd_certain_compiled_fallbacks_total counter\n")
	for i, l := range compiledFallbackLabels {
		fmt.Fprintf(&b, "pdxd_certain_compiled_fallbacks_total{reason=%q} %d\n", l, m.compiledFallbacks[i].Load())
	}
	fmt.Fprintf(&b, "# HELP pdxd_snapshot_saves_total Snapshots written to the snapshot store.\n# TYPE pdxd_snapshot_saves_total counter\npdxd_snapshot_saves_total %d\n", m.snapshotSaves.Load())
	fmt.Fprintf(&b, "# HELP pdxd_snapshot_loads_total Snapshots loaded and installed at warm start.\n# TYPE pdxd_snapshot_loads_total counter\npdxd_snapshot_loads_total %d\n", m.snapshotLoads.Load())
	fmt.Fprintf(&b, "# HELP pdxd_snapshot_load_errors_total Snapshots rejected at load time.\n# TYPE pdxd_snapshot_load_errors_total counter\npdxd_snapshot_load_errors_total %d\n", m.snapshotLoadErrors.Load())
	fmt.Fprintf(&b, "# HELP pdxd_snapshot_warm_transfers_total Snapshots pulled from a peer and installed.\n# TYPE pdxd_snapshot_warm_transfers_total counter\npdxd_snapshot_warm_transfers_total %d\n", m.warmTransfers.Load())
	fmt.Fprintf(&b, "# HELP pdxd_cluster_proxied_total Solves forwarded to the owning shard.\n# TYPE pdxd_cluster_proxied_total counter\npdxd_cluster_proxied_total %d\n", m.clusterProxied.Load())
	fmt.Fprintf(&b, "# HELP pdxd_cluster_owner_computes_total Chases computed on this shard as the ring owner.\n# TYPE pdxd_cluster_owner_computes_total counter\npdxd_cluster_owner_computes_total %d\n", m.clusterOwnerComputes.Load())
	fmt.Fprintf(&b, "# HELP pdxd_cluster_handoffs_total Cache entries pushed to their new owner after a ring change.\n# TYPE pdxd_cluster_handoffs_total counter\npdxd_cluster_handoffs_total %d\n", m.clusterHandoffs.Load())
	fmt.Fprintf(&b, "# HELP pdxd_cluster_ring_changes_total Liveness transitions observed on the ring.\n# TYPE pdxd_cluster_ring_changes_total counter\npdxd_cluster_ring_changes_total %d\n", m.clusterRingChanges.Load())
	return b.String()
}
