package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/reductions"
	"repro/pde"
	"repro/pde/client"
)

// example1 is the paper's running example (Example 1): source edges,
// target composed-edge relation, and a Σts that accepts only real
// edges. In C_tract.
const example1 = `
setting example1
source E/2
target H/2
st: E(x,z), E(z,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
`

// newTestServer starts a pdxd handler on an httptest server and
// returns the typed client pointed at it.
func newTestServer(t *testing.T, cfg Config) (*Server, *client.Client) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, client.New(ts.URL)
}

// cliqueWorkload returns setting and instance text for a CLIQUE
// reduction that the generic solver cannot finish in seconds (no
// 5-clique in a random 12-vertex graph: the search is exhaustive).
func cliqueWorkload() (setting, source, target string) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Random(12, 0.5, rng)
	s := reductions.CliqueSetting()
	i, j := reductions.CliqueInstance(g, 5)
	return pde.FormatSetting(s), pde.FormatInstance(i), pde.FormatInstance(j)
}

func TestRoundTripExample1(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	reg, err := c.Register(ctx, example1)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if !reg.Created || !reg.InCtract || reg.Strategy != "tractable" || reg.Name != "example1" {
		t.Fatalf("unexpected registration: %+v", reg)
	}
	if !strings.HasPrefix(reg.ID, "sha256:") {
		t.Fatalf("ID %q is not a content hash", reg.ID)
	}

	// Idempotent re-registration, even with different formatting.
	again, err := c.Register(ctx, example1+"\n\n")
	if err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if again.Created || again.ID != reg.ID {
		t.Fatalf("re-registration not idempotent: %+v vs %+v", again, reg)
	}

	// EXP-EX1 verdicts: path no, self-loop yes, triangle yes.
	for _, tc := range []struct {
		source string
		want   bool
	}{
		{"E(a,b). E(b,c).", false},
		{"E(a,a).", true},
		{"E(a,b). E(b,c). E(a,c).", true},
	} {
		res, err := c.ExistsSolution(ctx, client.SolveRequest{SettingID: reg.ID, Source: tc.source})
		if err != nil {
			t.Fatalf("solve %q: %v", tc.source, err)
		}
		if res.Exists != tc.want || res.Strategy != "tractable" {
			t.Errorf("%q: got exists=%v strategy=%s, want %v/tractable", tc.source, res.Exists, res.Strategy, tc.want)
		}
	}

	// Witness solution for the self-loop.
	res, err := c.ExistsSolution(ctx, client.SolveRequest{SettingID: reg.ID, Source: "E(a,a).", Witness: true})
	if err != nil {
		t.Fatalf("witness solve: %v", err)
	}
	if !res.Exists || !strings.Contains(res.Solution, "H(a, a)") {
		t.Errorf("witness: exists=%v solution=%q", res.Exists, res.Solution)
	}

	// Certain answers on the triangle: exactly (a, c).
	ca, err := c.CertainAnswers(ctx, client.CertainRequest{
		SettingID: reg.ID,
		Source:    "E(a,b). E(b,c). E(a,c).",
		Query:     "q(x,y) :- H(x,y)",
	})
	if err != nil {
		t.Fatalf("certain: %v", err)
	}
	if !ca.SolutionExists || len(ca.Answers) != 1 || ca.Answers[0][0] != "a" || ca.Answers[0][1] != "c" {
		t.Errorf("certain answers: %+v, want exactly [a c]", ca)
	}

	// Classify by registry ID and inline.
	cls, err := c.Classify(ctx, client.ClassifyRequest{SettingID: reg.ID})
	if err != nil || !cls.InCtract {
		t.Errorf("classify by id: %+v, %v", cls, err)
	}
	cls, err = c.Classify(ctx, client.ClassifyRequest{Setting: example1})
	if err != nil || !cls.InCtract {
		t.Errorf("classify inline: %+v, %v", cls, err)
	}

	// Vet inline.
	vet, err := c.Vet(ctx, client.VetRequest{Setting: example1, File: "example1.pde"})
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	if vet.Errors != 0 {
		t.Errorf("vet found errors in a clean setting: %+v", vet)
	}

	// List, evict, 404 after.
	list, err := c.Settings(ctx)
	if err != nil || len(list.Settings) != 1 || list.Settings[0].ID != reg.ID {
		t.Fatalf("list: %+v, %v", list, err)
	}
	if err := c.Evict(ctx, reg.ID); err != nil {
		t.Fatalf("evict: %v", err)
	}
	_, err = c.ExistsSolution(ctx, client.SolveRequest{SettingID: reg.ID, Source: "E(a,a)."})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Code != client.CodeNotFound {
		t.Fatalf("solve after evict: want 404 not_found, got %v", err)
	}

	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" || h.Settings != 0 {
		t.Errorf("health: %+v, %v", h, err)
	}
}

func TestBadRequests(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	reg, err := c.Register(ctx, example1)
	if err != nil {
		t.Fatal(err)
	}
	var apiErr *client.APIError

	_, err = c.Register(ctx, "not a setting at all ===")
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Errorf("garbage setting: want 400, got %v", err)
	}
	_, err = c.ExistsSolution(ctx, client.SolveRequest{SettingID: "sha256:feed", Source: "E(a,a)."})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("unknown setting: want 404, got %v", err)
	}
	_, err = c.ExistsSolution(ctx, client.SolveRequest{SettingID: reg.ID, Source: "E(a,"})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Errorf("bad instance: want 400, got %v", err)
	}
	_, err = c.CertainAnswers(ctx, client.CertainRequest{SettingID: reg.ID, Source: "E(a,a).", Query: "nope"})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Errorf("bad query: want 400, got %v", err)
	}
}

// TestDeadline is the acceptance scenario: a 50ms deadline against a
// workload that needs well over a second serially must come back
// promptly with a deadline error.
func TestDeadline(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	setting, source, target := cliqueWorkload()
	reg, err := c.Register(ctx, setting)
	if err != nil {
		t.Fatalf("register clique setting: %v", err)
	}
	if reg.Strategy != "generic" {
		t.Fatalf("clique setting classified %q, want generic", reg.Strategy)
	}

	start := time.Now()
	_, err = c.ExistsSolution(ctx, client.SolveRequest{
		SettingID:      reg.ID,
		Source:         source,
		Target:         target,
		DeadlineMillis: 50,
	})
	elapsed := time.Since(start)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want APIError, got %v", err)
	}
	if apiErr.Status != http.StatusGatewayTimeout || apiErr.Code != client.CodeDeadlineExceeded {
		t.Fatalf("want 504 deadline_exceeded, got %d %s (%s)", apiErr.Status, apiErr.Code, apiErr.Message)
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline response took %v, want prompt (≤2s)", elapsed)
	}
}

// TestMaxNodesBudget exercises the server-side search budget mapping.
func TestMaxNodesBudget(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	setting, source, target := cliqueWorkload()
	reg, err := c.Register(ctx, setting)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.ExistsSolution(ctx, client.SolveRequest{
		SettingID: reg.ID, Source: source, Target: target, MaxNodes: 100,
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity || apiErr.Code != client.CodeUnprocessable {
		t.Fatalf("want 422 unprocessable for budget exhaustion, got %v", err)
	}
}

// blockSlot occupies admission slots with a slow clique solve and
// returns once the server reports it in flight.
func blockSlot(t *testing.T, s *Server, c *client.Client, id, source, target string) (cancel func()) {
	t.Helper()
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		// The solve ends via client-side cancel; the error is expected.
		_, _ = c.ExistsSolution(ctx, client.SolveRequest{
			SettingID: id, Source: source, Target: target, DeadlineMillis: 60_000,
		})
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.InFlight() == 0 {
		if time.Now().After(deadline) {
			stop()
			t.Fatal("blocking solve never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return func() {
		stop()
		<-done
	}
}

// TestAdmissionShedding fills the single in-flight slot, disallows
// queueing, and checks the next solve is shed with 429.
func TestAdmissionShedding(t *testing.T) {
	s, c := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: -1})
	ctx := context.Background()

	setting, source, target := cliqueWorkload()
	reg, err := c.Register(ctx, setting)
	if err != nil {
		t.Fatal(err)
	}
	stop := blockSlot(t, s, c, reg.ID, source, target)
	defer stop()

	_, err = c.ExistsSolution(ctx, client.SolveRequest{SettingID: reg.ID, Source: source, Target: target})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests || apiErr.Code != client.CodeOverloaded {
		t.Fatalf("want 429 overloaded, got %v", err)
	}
}

// TestQueueDeadline queues behind a busy slot and lets the request
// deadline expire while waiting: 504, and promptly.
func TestQueueDeadline(t *testing.T) {
	s, c := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 1})
	ctx := context.Background()

	setting, source, target := cliqueWorkload()
	reg, err := c.Register(ctx, setting)
	if err != nil {
		t.Fatal(err)
	}
	stop := blockSlot(t, s, c, reg.ID, source, target)
	defer stop()

	start := time.Now()
	_, err = c.ExistsSolution(ctx, client.SolveRequest{
		SettingID: reg.ID, Source: source, Target: target, DeadlineMillis: 100,
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout || apiErr.Code != client.CodeDeadlineExceeded {
		t.Fatalf("want 504 deadline_exceeded from the queue, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("queued deadline took %v, want prompt", elapsed)
	}
}

// TestDrain checks StartDrain sheds new solves while health reports
// draining.
func TestDrain(t *testing.T) {
	s, c := newTestServer(t, Config{})
	ctx := context.Background()

	reg, err := c.Register(ctx, example1)
	if err != nil {
		t.Fatal(err)
	}
	s.StartDrain()
	_, err = c.ExistsSolution(ctx, client.SolveRequest{SettingID: reg.ID, Source: "E(a,a)."})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != client.CodeShuttingDown {
		t.Fatalf("want 503 shutting_down, got %v", err)
	}
	h, err := c.Health(ctx)
	if err != nil || h.Status != "draining" {
		t.Errorf("health during drain: %+v, %v", h, err)
	}
}

// TestConcurrentClients hammers one registered setting from 32 clients
// (the acceptance race scenario; run under -race).
func TestConcurrentClients(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	reg, err := c.Register(ctx, example1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		source string
		want   bool
	}{
		{"E(a,b). E(b,c).", false},
		{"E(a,a).", true},
		{"E(a,b). E(b,c). E(a,c).", true},
	}
	var wg sync.WaitGroup
	errc := make(chan error, 32)
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < 4; n++ {
				tc := cases[(w+n)%len(cases)]
				res, err := c.ExistsSolution(ctx, client.SolveRequest{SettingID: reg.ID, Source: tc.source})
				if err != nil {
					errc <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				if res.Exists != tc.want {
					errc <- fmt.Errorf("worker %d: %q got %v want %v", w, tc.source, res.Exists, tc.want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestRegistryConcurrent drives register/get/list/evict of the same
// settings from many goroutines (run under -race).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	settings := []string{
		example1,
		"setting s2\nsource A/1\ntarget B/1\nst: A(x) -> B(x)\nts: B(x) -> A(x)\n",
		"setting s3\nsource C/2\ntarget D/2\nst: C(x,y) -> D(x,y)\nts: D(x,y) -> C(x,y)\n",
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				src := settings[(w+n)%len(settings)]
				c, _, err := r.Register(src)
				if err != nil {
					t.Errorf("register: %v", err)
					return
				}
				if got := r.Get(c.ID); got != nil && got.ID != c.ID {
					t.Errorf("get returned wrong entry")
					return
				}
				r.List()
				if n%7 == 0 {
					r.Evict(c.ID)
				}
			}
		}(w)
	}
	wg.Wait()
	// Settle to a known state: everything registered exactly once.
	for _, src := range settings {
		if _, _, err := r.Register(src); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != len(settings) {
		t.Errorf("registry has %d settings, want %d", r.Len(), len(settings))
	}
}

func TestMetricsAndLogs(t *testing.T) {
	var mu sync.Mutex
	var logs strings.Builder
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{mu: &mu, w: &logs}, nil))
	_, c := newTestServer(t, Config{Logger: logger})
	ctx := context.Background()

	reg, err := c.Register(ctx, example1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExistsSolution(ctx, client.SolveRequest{SettingID: reg.ID, Source: "E(a,a)."}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(strings.TrimSuffix(c.Base(), "/") + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`pdxd_requests_total{route="settings-register",status="201"} 1`,
		`pdxd_requests_total{route="exists-solution",status="200"} 1`,
		"pdxd_registry_settings 1",
		"pdxd_in_flight_solves 0",
		"pdxd_shed_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	mu.Lock()
	logged := logs.String()
	mu.Unlock()
	for _, want := range []string{`"route":"exists-solution"`, `"status":200`, `"msg":"request"`} {
		if !strings.Contains(logged, want) {
			t.Errorf("request log missing %q in:\n%s", want, logged)
		}
	}
}

// lockedWriter serializes concurrent handler goroutines writing to the
// test's log buffer.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
