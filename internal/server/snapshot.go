package server

// Snapshot persistence: the glue between the chase cache and the
// internal/snap store. Saves are write-behind — cache fills enqueue the
// completed entry on a bounded channel drained by one worker goroutine,
// so the solve path never waits on disk — and loads happen once at
// startup (LoadSnapshots) or on demand from a peer (WarmFrom). Every
// loaded snapshot is re-validated before installation: its key must be
// the hash of its identity, its instance texts must hash to the claimed
// instance IDs, its setting must already be registered, and its
// instances must fit the setting's schemas. A snapshot failing any of
// these is skipped and counted in pdxd_snapshot_load_errors_total —
// never trusted.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"

	"repro/internal/core"
	"repro/internal/snap"
	"repro/pde"
	"repro/pde/client"
)

// errSettingUnregistered marks a snapshot rejected only because its
// setting is not in the local registry. A cluster peer pushing a
// handoff entry can heal this (register the setting, retry); every
// other rejection is final.
var errSettingUnregistered = errors.New("setting is not registered")

// snapQueueLen bounds the write-behind queue. A full queue drops the
// save (with a warning): the entry is still served from memory and will
// be re-saved if it is recomputed after a restart.
const snapQueueLen = 256

// snapKind maps a cache kind onto the codec's kind label.
func snapKind(k cacheKind) string {
	if k == kindTractable {
		return snap.KindTractable
	}
	return snap.KindGeneric
}

// snapEntry builds the codec entry for a completed cache entry, or nil
// when the entry cannot be serialized (missing instances — e.g. a
// legacy entry installed without them).
func snapEntry(e *cacheEntry) *snap.Entry {
	if e.srcInst == nil || e.tgtInst == nil {
		return nil
	}
	se := &snap.Entry{
		SettingID:  e.settingID,
		SourceID:   e.srcID,
		TargetID:   e.tgtID,
		Kind:       snapKind(e.kind),
		SourceText: pde.FormatInstance(e.srcInst),
		TargetText: pde.FormatInstance(e.tgtInst),
	}
	switch v := e.value.(type) {
	case *core.TractableTrace:
		se.Tractable = v
	case *core.CanonicalTarget:
		se.Generic = v
	default:
		return nil
	}
	return se
}

// snapKeyOf returns the snapshot key of a cache entry.
func snapKeyOf(e *cacheEntry) string {
	return snap.Key(e.settingID, e.srcID, e.tgtID, snapKind(e.kind))
}

// saveAsync enqueues a completed cache entry for the write-behind
// worker. It never blocks: with the queue full the save is dropped and
// logged. Safe to call with snapshots disabled (no-op).
func (s *Server) saveAsync(e *cacheEntry) {
	if s.cfg.Snapshots == nil || e == nil {
		return
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.snapClosed {
		return
	}
	select {
	case s.snapQ <- e:
	default:
		s.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "snapshot queue full, dropping save",
			slog.String("key", snapKeyOf(e)))
	}
}

// snapWorker drains the write-behind queue until Close closes it.
func (s *Server) snapWorker() {
	defer close(s.snapDone)
	for e := range s.snapQ {
		s.saveSnapshot(e)
	}
}

// saveSnapshot encodes one entry and writes it to the store.
func (s *Server) saveSnapshot(e *cacheEntry) {
	se := snapEntry(e)
	if se == nil {
		return
	}
	key := snapKeyOf(e)
	data, err := snap.Encode(se)
	if err == nil {
		err = s.cfg.Snapshots.Save(key, data)
	}
	if err != nil {
		s.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "snapshot save failed",
			slog.String("key", key), slog.String("err", err.Error()))
		return
	}
	s.met.snapshotSaves.Add(1)
}

// Close stops the cluster monitor, then flushes the write-behind queue
// and stops its worker. Idempotent and safe without a snapshot store or
// cluster. Call after the HTTP server has shut down so every admitted
// solve has had its chance to enqueue.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.cluster != nil {
			close(s.cluster.stop)
			<-s.cluster.done
		}
		if s.cfg.Snapshots == nil {
			return
		}
		s.snapMu.Lock()
		s.snapClosed = true
		s.snapMu.Unlock()
		close(s.snapQ)
		<-s.snapDone
	})
}

// LoadSnapshots scans the snapshot store and installs every snapshot
// that validates against the current registries, returning the counts
// of installed and rejected snapshots. Call it after preloading
// settings: a snapshot whose setting is not registered is rejected (its
// file stays put — a later restart with the setting preloaded will pick
// it up).
func (s *Server) LoadSnapshots() (loaded, failed int) {
	if s.cfg.Snapshots == nil {
		return 0, 0
	}
	keys, err := s.cfg.Snapshots.List()
	if err != nil {
		s.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "snapshot scan failed",
			slog.String("err", err.Error()))
		return 0, 0
	}
	for _, key := range keys {
		if err := s.loadSnapshot(key); err != nil {
			failed++
			s.met.snapshotLoadErrors.Add(1)
			s.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "snapshot rejected",
				slog.String("key", key), slog.String("err", err.Error()))
			continue
		}
		loaded++
		s.met.snapshotLoads.Add(1)
	}
	return loaded, failed
}

// loadSnapshot reads, decodes, and installs one stored snapshot.
func (s *Server) loadSnapshot(key string) error {
	data, err := s.cfg.Snapshots.Load(key)
	if err != nil {
		return err
	}
	e, err := snap.Decode(data)
	if err != nil {
		return err
	}
	return s.installSnapshot(key, e, false)
}

// installSnapshot validates a decoded snapshot and installs it into the
// chase cache, registering its instances. fromPeer marks warm-transfer
// installs: they count as warm transfers and are persisted to the local
// store via the write-behind queue.
func (s *Server) installSnapshot(key string, e *snap.Entry, fromPeer bool) error {
	if want := snap.Key(e.SettingID, e.SourceID, e.TargetID, e.Kind); key != want {
		return fmt.Errorf("snapshot key %s does not hash its identity (want %s)", key, want)
	}
	var kind cacheKind
	switch e.Kind {
	case snap.KindTractable:
		kind = kindTractable
	case snap.KindGeneric:
		kind = kindGeneric
	default:
		return fmt.Errorf("unknown snapshot kind %q", e.Kind)
	}
	c := s.reg.Get(e.SettingID)
	if c == nil {
		return fmt.Errorf("setting %s: %w", e.SettingID, errSettingUnregistered)
	}
	src, err := s.adoptInstance(e.SourceText, e.SourceID, "source")
	if err != nil {
		return err
	}
	tgt, err := s.adoptInstance(e.TargetText, e.TargetID, "target")
	if err != nil {
		return err
	}
	if err := src.ValidateAgainst(c.Setting.Source); err != nil {
		return fmt.Errorf("source instance: %w", err)
	}
	if err := tgt.ValidateAgainst(c.Setting.Target); err != nil {
		return fmt.Errorf("target instance: %w", err)
	}
	var value any
	var bytes int64
	switch kind {
	case kindTractable:
		value, bytes = e.Tractable, tractableBytes(e.Tractable)
	case kindGeneric:
		value, bytes = e.Generic, canonicalBytes(e.Generic)
	}
	meta := cacheEntry{
		key:       cacheKey(e.SettingID, e.SourceID, e.TargetID, kind),
		settingID: e.SettingID,
		srcID:     e.SourceID,
		tgtID:     e.TargetID,
		kind:      kind,
		srcInst:   src,
		tgtInst:   tgt,
	}
	s.cache.put(meta, value, bytes)
	if fromPeer {
		s.met.warmTransfers.Add(1)
		if el, ok := s.cacheEntryByKey(meta.key); ok {
			s.saveAsync(el)
		}
	}
	return nil
}

// adoptInstance re-compiles a snapshot's instance text, checks the
// content hash against the claimed ID, and registers the instance so
// solve-by-ID works immediately after a warm start. Empty instances are
// returned without registration — they have no facts to address.
func (s *Server) adoptInstance(text, claimedID, side string) (*pde.Instance, error) {
	si, err := compileInstance(text)
	if err != nil {
		return nil, fmt.Errorf("%s instance text: %w", side, err)
	}
	if si.ID != claimedID {
		return nil, fmt.Errorf("%s instance text hashes to %s, snapshot claims %s", side, si.ID, claimedID)
	}
	if si.Facts > 0 {
		si, _, err = s.inst.insert(si)
		if err != nil {
			return nil, fmt.Errorf("registering %s instance: %w", side, err)
		}
	}
	return si.Inst, nil
}

// cacheEntryByKey finds a completed cache entry by its composite key.
func (s *Server) cacheEntryByKey(key string) (*cacheEntry, bool) {
	for _, e := range s.cache.entries() {
		if e.key == key {
			return e, true
		}
	}
	return nil, false
}

// WarmFrom pulls the peer's cache listing and installs every snapshot
// this daemon can validate, returning the counts of installed and
// skipped entries. Keys already present in the local cache are not
// re-fetched. Per-entry failures (fetch, decode, validation) skip the
// entry; only the initial listing can fail the whole pull.
func (s *Server) WarmFrom(ctx context.Context, base string) (pulled, skipped int, err error) {
	cl := client.New(base)
	keys, err := cl.CacheKeys(ctx)
	if err != nil {
		return 0, 0, fmt.Errorf("listing peer cache: %w", err)
	}
	have := make(map[string]bool)
	for _, e := range s.cache.entries() {
		have[snapKeyOf(e)] = true
	}
	for _, k := range keys.Keys {
		if have[k.Key] {
			skipped++
			continue
		}
		data, ferr := cl.CacheEntry(ctx, k.Key)
		if ferr == nil {
			var e *snap.Entry
			if e, ferr = snap.Decode(data); ferr == nil {
				ferr = s.installSnapshot(k.Key, e, true)
			}
		}
		if ferr != nil {
			skipped++
			s.met.snapshotLoadErrors.Add(1)
			s.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "warm transfer rejected",
				slog.String("key", k.Key), slog.String("err", ferr.Error()))
			continue
		}
		pulled++
	}
	return pulled, skipped, nil
}

// handleCacheKeys lists the cache entries available for warm transfer.
func (s *Server) handleCacheKeys(w http.ResponseWriter, r *http.Request) {
	out := client.CacheKeysResponse{Keys: []client.CacheKeySummary{}}
	for _, e := range s.cache.entries() {
		if e.srcInst == nil || e.tgtInst == nil {
			continue // not serializable; nothing to transfer
		}
		out.Keys = append(out.Keys, client.CacheKeySummary{
			Key:       snapKeyOf(e),
			SettingID: e.settingID,
			SourceID:  e.srcID,
			TargetID:  e.tgtID,
			Kind:      string(e.kind),
		})
	}
	sort.Slice(out.Keys, func(i, j int) bool { return out.Keys[i].Key < out.Keys[j].Key })
	writeJSON(w, http.StatusOK, out)
}

// handleCachePush installs one pushed cache entry (cluster handoff).
// The body is the binary snapshot wire format; it is re-validated
// exactly like a warm start — checksum, key/identity hash agreement,
// instance-text hashes, schema fit — before anything is installed, so a
// push is never more trusted than a disk load. A snapshot whose setting
// is unknown here is rejected with 404, telling the pusher to register
// the setting and retry.
func (s *Server) handleCachePush(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, client.CodeBadRequest, "reading snapshot body: %v", err)
		return
	}
	e, derr := snap.Decode(data)
	if derr == nil {
		derr = s.installSnapshot(key, e, true)
	}
	if derr != nil {
		s.met.snapshotLoadErrors.Add(1)
		status, code := http.StatusUnprocessableEntity, client.CodeUnprocessable
		if errors.Is(derr, errSettingUnregistered) {
			status, code = http.StatusNotFound, client.CodeNotFound
		}
		writeErr(w, status, code, "installing pushed snapshot: %v", derr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"installed": key})
}

// handleCacheEntry serves one cache entry in the snapshot wire format.
func (s *Server) handleCacheEntry(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	for _, e := range s.cache.entries() {
		if snapKeyOf(e) != key {
			continue
		}
		se := snapEntry(e)
		if se == nil {
			break
		}
		data, err := snap.Encode(se)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, client.CodeInternal, "encoding snapshot: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)
		return
	}
	writeErr(w, http.StatusNotFound, client.CodeNotFound, "no cache entry with key %q", key)
}
