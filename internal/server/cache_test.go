package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/workload"
	"repro/pde"
	"repro/pde/client"
)

func TestChaseCacheSingleFlight(t *testing.T) {
	cc := newChaseCache(0, 16, newMetrics())
	meta := cacheEntry{key: "k", settingID: "s", srcID: "i", tgtID: "j", kind: kindTractable}
	var computes atomic.Int32
	var hits atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, err := cc.getOrCompute(context.Background(), "k", meta, func() (any, int64, error) {
				computes.Add(1)
				time.Sleep(30 * time.Millisecond)
				return "artifact", 8, nil
			})
			if err != nil || v != "artifact" {
				t.Errorf("getOrCompute: %v, %v", v, err)
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	wg.Wait()
	if computes.Load() != 1 {
		t.Errorf("compute ran %d times, want 1", computes.Load())
	}
	if hits.Load() != 15 {
		t.Errorf("%d hits, want 15 (everyone but the leader)", hits.Load())
	}
}

func TestChaseCacheFailedComputeNotRetained(t *testing.T) {
	cc := newChaseCache(0, 16, newMetrics())
	meta := cacheEntry{key: "k"}
	boom := errors.New("budget exhausted")
	if _, _, err := cc.getOrCompute(context.Background(), "k", meta, func() (any, int64, error) {
		return nil, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("want leader failure, got %v", err)
	}
	if n, _ := cc.stats(); n != 0 {
		t.Fatalf("failed compute was retained: %d entries", n)
	}
	// The next requester becomes the leader and can succeed.
	v, hit, err := cc.getOrCompute(context.Background(), "k", meta, func() (any, int64, error) {
		return "ok", 2, nil
	})
	if err != nil || hit || v != "ok" {
		t.Fatalf("recompute after failure: v=%v hit=%v err=%v", v, hit, err)
	}
}

func TestChaseCacheLRUBounds(t *testing.T) {
	met := newMetrics()
	cc := newChaseCache(0, 2, met)
	for _, k := range []string{"a", "b", "c"} {
		cc.getOrCompute(context.Background(), k, cacheEntry{key: k}, func() (any, int64, error) {
			return k, 100, nil
		})
	}
	n, bytes := cc.stats()
	if n != 2 || bytes != 200 {
		t.Errorf("after 3 inserts with maxEntries=2: %d entries / %d bytes, want 2 / 200", n, bytes)
	}
	// "a" (least recently used) is gone; a re-get recomputes it.
	_, hit, _ := cc.getOrCompute(context.Background(), "a", cacheEntry{key: "a"}, func() (any, int64, error) {
		return "a", 100, nil
	})
	if hit {
		t.Error("evicted entry reported a hit")
	}
	if got := met.cacheEvictions.Load(); got < 1 {
		t.Errorf("evictions counter = %d, want ≥1", got)
	}

	// Byte budget: an insert that blows the bound evicts older entries
	// but spares itself.
	cc2 := newChaseCache(150, 0, met)
	cc2.put(cacheEntry{key: "x"}, "x", 100)
	cc2.put(cacheEntry{key: "y"}, "y", 120)
	n, bytes = cc2.stats()
	if n != 1 || bytes != 120 {
		t.Errorf("byte bound: %d entries / %d bytes, want 1 / 120 (y only)", n, bytes)
	}
}

// metricsValue scrapes /metrics and returns the value of an exact
// (unlabelled) series.
func metricsValue(t *testing.T, c *client.Client, name string) int64 {
	t.Helper()
	resp, err := http.Get(c.Base() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(string(body), "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, name+" %d", &v); n == 1 {
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestCacheHitAppendEndToEnd walks the full tentpole flow over HTTP:
// register instances, solve twice (second from cache), append, solve
// the appended instance (cache migrated), and watch the counters move.
func TestCacheHitAppendEndToEnd(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	reg, err := c.Register(ctx, example1)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := c.RegisterInstance(ctx, "E(a,b). E(b,c).")
	if err != nil {
		t.Fatalf("register instance: %v", err)
	}
	if !inst.Created || inst.Facts != 2 || !strings.HasPrefix(inst.ID, "sha256:") {
		t.Fatalf("unexpected instance registration: %+v", inst)
	}
	again, err := c.RegisterInstance(ctx, "E(b,c).\nE(a,b).")
	if err != nil || again.Created || again.ID != inst.ID {
		t.Fatalf("instance registration not canonical/idempotent: %+v, %v", again, err)
	}

	// Cold then warm: same verdict, second solve from cache.
	cold, err := c.ExistsSolution(ctx, client.SolveRequest{SettingID: reg.ID, SourceID: inst.ID})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.ExistsSolution(ctx, client.SolveRequest{SettingID: reg.ID, SourceID: inst.ID})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit || !warm.CacheHit || cold.Exists != warm.Exists || warm.Exists {
		t.Fatalf("cold=%+v warm=%+v (path has no solution; warm must be a hit)", cold, warm)
	}
	if metricsValue(t, c, "pdxd_chase_cache_hits_total") < 1 {
		t.Error("hit counter did not move")
	}

	// Append the closing edge: the composed pair (a,c) gets a real edge,
	// so the appended instance has a solution. Its solve starts from the
	// migrated cache entry.
	app, err := c.AppendInstance(ctx, inst.ID, client.AppendRequest{Facts: "E(a,c). E(a,b)."})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if app.Added != 1 || app.Facts != 3 || app.Parent != inst.ID || app.ID == inst.ID {
		t.Fatalf("append bookkeeping: %+v", app)
	}
	if app.Migrated != 1 || app.Resumed != 1 || app.Fallbacks != 0 {
		t.Fatalf("migration: %+v, want 1 entry resumed incrementally", app)
	}
	res, err := c.ExistsSolution(ctx, client.SolveRequest{SettingID: reg.ID, SourceID: app.ID, Witness: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exists || !res.CacheHit || !strings.Contains(res.Solution, "H(a, c)") {
		t.Fatalf("solve after append: %+v, want cached hit with H(a, c) witness", res)
	}
	if metricsValue(t, c, "pdxd_chase_cache_resumes_total") != 1 {
		t.Error("resume counter did not move")
	}

	// Appending nothing new is a no-op returning the same instance.
	noop, err := c.AppendInstance(ctx, app.ID, client.AppendRequest{Facts: "E(a,b)."})
	if err != nil || noop.ID != app.ID || noop.Added != 0 || noop.Migrated != 0 {
		t.Fatalf("no-op append: %+v, %v", noop, err)
	}

	// Certain answers by ID: this setting is in the compilable
	// fragment, so both calls run the compiled plan and never touch the
	// chase cache; the second is served by the cached query plan.
	ca1, err := c.CertainAnswers(ctx, client.CertainRequest{SettingID: reg.ID, SourceID: app.ID, Query: "q(x,y) :- H(x,y)"})
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := c.CertainAnswers(ctx, client.CertainRequest{SettingID: reg.ID, SourceID: app.ID, Query: "q(x,y) :- H(x,y)"})
	if err != nil {
		t.Fatal(err)
	}
	if !ca1.Compiled || !ca2.Compiled || ca1.CacheHit || ca2.CacheHit ||
		len(ca2.Answers) != 1 || ca2.Answers[0][0] != "a" || ca2.Answers[0][1] != "c" {
		t.Fatalf("certain: first=%+v second=%+v, want compiled answers [a c] with no chase", ca1, ca2)
	}
	if metricsValue(t, c, "pdxd_plan_cache_misses_total") != 1 || metricsValue(t, c, "pdxd_plan_cache_hits_total") != 1 {
		t.Error("plan cache counters did not record one miss then one hit")
	}

	// Instance listing and health see all three instances.
	list, err := c.Instances(ctx)
	if err != nil || len(list.Instances) != 2 {
		t.Fatalf("instances: %+v, %v", list, err)
	}
	h, err := c.Health(ctx)
	if err != nil || h.Instances != 2 {
		t.Fatalf("health instances: %+v, %v", h, err)
	}

	// Evicting the appended instance drops its cache entries.
	if err := c.EvictInstance(ctx, app.ID); err != nil {
		t.Fatal(err)
	}
	if got := metricsValue(t, c, "pdxd_chase_cache_entries"); got != 1 {
		t.Errorf("cache entries after instance evict = %d, want 1 (only the base entry)", got)
	}
	_, err = c.ExistsSolution(ctx, client.SolveRequest{SettingID: reg.ID, SourceID: app.ID})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("solve by evicted instance ID: want 404, got %v", err)
	}

	// Evicting the setting drops the remaining entry.
	if err := c.Evict(ctx, reg.ID); err != nil {
		t.Fatal(err)
	}
	if got := metricsValue(t, c, "pdxd_chase_cache_entries"); got != 0 {
		t.Errorf("cache entries after setting evict = %d, want 0", got)
	}
}

func TestSolveRejectsInlinePlusID(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	reg, err := c.Register(ctx, example1)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := c.RegisterInstance(ctx, "E(a,a).")
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.ExistsSolution(ctx, client.SolveRequest{
		SettingID: reg.ID, Source: "E(a,a).", SourceID: inst.ID,
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("inline+ID source: want 400, got %v", err)
	}
	_, err = c.ExistsSolution(ctx, client.SolveRequest{SettingID: reg.ID, SourceID: "sha256:feed"})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown instance ID: want 404, got %v", err)
	}
}

// cacheCase is one setting of the equivalence property test, with the
// relations random facts are drawn from per side.
type cacheCase struct {
	setting string
	srcRels []relDef
	tgtRels []relDef
	query   string
}

type relDef struct {
	name  string
	arity int
}

func randFactText(rng *rand.Rand, rels []relDef, n int) string {
	var b strings.Builder
	for k := 0; k < n; k++ {
		r := rels[rng.Intn(len(rels))]
		b.WriteString(r.name)
		b.WriteString("(")
		for a := 0; a < r.arity; a++ {
			if a > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "c%d", rng.Intn(4))
		}
		b.WriteString("). ")
	}
	return b.String()
}

func fmtAnswers(a [][]string) string {
	rows := make([]string, 0, len(a))
	for _, row := range a {
		rows = append(rows, strings.Join(row, ","))
	}
	sort.Strings(rows)
	return strings.Join(rows, ";")
}

// TestCacheEquivalenceRandom is the tentpole's correctness property:
// across random workloads and random append batches (including
// egd-triggered full re-chase fallbacks), verdicts and certain answers
// computed from cached/migrated fixpoints must equal a cache-disabled
// server computing from scratch.
func TestCacheEquivalenceRandom(t *testing.T) {
	warmSrv, warm := newTestServer(t, Config{})
	_, cold := newTestServer(t, Config{CacheMaxEntries: -1})
	ctx := context.Background()
	_ = warmSrv

	cases := []cacheCase{
		{
			setting: example1,
			srcRels: []relDef{{"E", 2}},
			tgtRels: []relDef{{"H", 2}},
			query:   "q(x,y) :- H(x,y)",
		},
		{
			setting: `
setting gensym
source A/1, B/2
target T/2
st: A(x) -> T(x,x)
st: B(x,y) -> T(x,y)
ts: T(x,y) -> B(x,y)
t: T(x,y) -> T(y,x)
`,
			srcRels: []relDef{{"A", 1}, {"B", 2}},
			tgtRels: []relDef{{"T", 2}},
			query:   "q(x,y) :- T(x,y)",
		},
		{
			setting: `
setting egdkey
source B/2
target T/2
st: B(x,y) -> T(x,y)
ts: T(x,y) -> B(x,y)
t: T(x,y), T(x,z) -> y = z
`,
			srcRels: []relDef{{"B", 2}},
			tgtRels: []relDef{{"T", 2}},
			query:   "q(x,y) :- T(x,y)",
		},
	}
	ids := make([]string, len(cases))
	for k, tc := range cases {
		reg, err := warm.Register(ctx, tc.setting)
		if err != nil {
			t.Fatalf("case %d register (warm): %v", k, err)
		}
		if _, err := cold.Register(ctx, tc.setting); err != nil {
			t.Fatalf("case %d register (cold): %v", k, err)
		}
		ids[k] = reg.ID
	}

	var resumes, fallbacks int
	const trials = 51
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		k := trial % len(cases)
		tc, id := cases[k], ids[k]

		srcText := randFactText(rng, tc.srcRels, 3+rng.Intn(4))
		tgtText := randFactText(rng, tc.tgtRels, 1+rng.Intn(2))
		srcInst, err := warm.RegisterInstance(ctx, srcText)
		if err != nil {
			t.Fatalf("trial %d: register source: %v", trial, err)
		}
		tgtInst, err := warm.RegisterInstance(ctx, tgtText)
		if err != nil {
			t.Fatalf("trial %d: register target: %v", trial, err)
		}
		srcID, tgtID := srcInst.ID, tgtInst.ID

		// Warm the cache, then run two append rounds: round 0 grows the
		// source, round 1 grows the target.
		if _, err := warm.ExistsSolution(ctx, client.SolveRequest{SettingID: id, SourceID: srcID, TargetID: tgtID}); err != nil {
			t.Fatalf("trial %d: warmup solve: %v", trial, err)
		}
		if _, err := warm.CertainAnswers(ctx, client.CertainRequest{SettingID: id, SourceID: srcID, TargetID: tgtID, Query: tc.query}); err != nil {
			t.Fatalf("trial %d: warmup certain: %v", trial, err)
		}
		for round := 0; round < 2; round++ {
			var batch string
			if round == 0 {
				batch = randFactText(rng, tc.srcRels, 1+rng.Intn(3))
				app, err := warm.AppendInstance(ctx, srcID, client.AppendRequest{Facts: batch})
				if err != nil {
					t.Fatalf("trial %d round %d: append: %v", trial, round, err)
				}
				srcText += " " + batch
				srcID = app.ID
				resumes += app.Resumed
				fallbacks += app.Fallbacks
			} else {
				batch = randFactText(rng, tc.tgtRels, 1+rng.Intn(2))
				app, err := warm.AppendInstance(ctx, tgtID, client.AppendRequest{Facts: batch})
				if err != nil {
					t.Fatalf("trial %d round %d: append: %v", trial, round, err)
				}
				tgtText += " " + batch
				tgtID = app.ID
				resumes += app.Resumed
				fallbacks += app.Fallbacks
			}

			got, err := warm.ExistsSolution(ctx, client.SolveRequest{SettingID: id, SourceID: srcID, TargetID: tgtID})
			if err != nil {
				t.Fatalf("trial %d round %d: warm solve: %v", trial, round, err)
			}
			want, err := cold.ExistsSolution(ctx, client.SolveRequest{SettingID: id, Source: srcText, Target: tgtText})
			if err != nil {
				t.Fatalf("trial %d round %d: cold solve: %v", trial, round, err)
			}
			if got.Exists != want.Exists {
				t.Errorf("trial %d round %d (%s): cached exists=%v, scratch=%v\nsource: %s\ntarget: %s",
					trial, round, ids[k][:18], got.Exists, want.Exists, srcText, tgtText)
			}
			gotCA, err := warm.CertainAnswers(ctx, client.CertainRequest{SettingID: id, SourceID: srcID, TargetID: tgtID, Query: tc.query})
			if err != nil {
				t.Fatalf("trial %d round %d: warm certain: %v", trial, round, err)
			}
			wantCA, err := cold.CertainAnswers(ctx, client.CertainRequest{SettingID: id, Source: srcText, Target: tgtText, Query: tc.query})
			if err != nil {
				t.Fatalf("trial %d round %d: cold certain: %v", trial, round, err)
			}
			if gotCA.SolutionExists != wantCA.SolutionExists || fmtAnswers(gotCA.Answers) != fmtAnswers(wantCA.Answers) {
				t.Errorf("trial %d round %d: cached certain=%+v, scratch=%+v\nsource: %s\ntarget: %s",
					trial, round, gotCA, wantCA, srcText, tgtText)
			}
		}
	}
	// The trial mix must exercise both migration paths: incremental
	// resumes (pure-tgd settings) and egd-triggered full re-chases.
	if resumes == 0 || fallbacks == 0 {
		t.Errorf("migration paths not both exercised: %d resumes, %d fallbacks", resumes, fallbacks)
	}
}

// TestWarmColdLatency is the acceptance bar: a warm repeat of
// /v1/exists-solution against a registered instance must be at least
// 5× faster (p50) than the cold solve that populated the cache.
func TestWarmColdLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("latency measurement")
	}
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	s := workload.LAVSetting()
	rng := rand.New(rand.NewSource(42))
	i, j := workload.LAVInstance(1600, true, rng)
	reg, err := c.Register(ctx, pde.FormatSetting(s))
	if err != nil {
		t.Fatal(err)
	}
	si, err := c.RegisterInstance(ctx, pde.FormatInstance(i))
	if err != nil {
		t.Fatal(err)
	}
	tj, err := c.RegisterInstance(ctx, pde.FormatInstance(j))
	if err != nil {
		t.Fatal(err)
	}

	req := client.SolveRequest{SettingID: reg.ID, SourceID: si.ID, TargetID: tj.ID, DeadlineMillis: 120_000}
	start := time.Now()
	coldRes, err := c.ExistsSolution(ctx, req)
	coldDur := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if coldRes.CacheHit {
		t.Fatal("first solve reported a cache hit")
	}

	var warmDurs []time.Duration
	for n := 0; n < 7; n++ {
		start = time.Now()
		res, err := c.ExistsSolution(ctx, req)
		warmDurs = append(warmDurs, time.Since(start))
		if err != nil {
			t.Fatal(err)
		}
		if !res.CacheHit || res.Exists != coldRes.Exists {
			t.Fatalf("warm solve %d: %+v (cold exists=%v)", n, res, coldRes.Exists)
		}
	}
	sort.Slice(warmDurs, func(a, b int) bool { return warmDurs[a] < warmDurs[b] })
	warmP50 := warmDurs[len(warmDurs)/2]
	t.Logf("cold=%v warm p50=%v (%.1fx)", coldDur, warmP50, float64(coldDur)/float64(warmP50))
	if coldDur < 5*warmP50 {
		t.Errorf("warm p50 %v is not ≥5x faster than cold %v", warmP50, coldDur)
	}
}

// TestCacheKeyedResumeAndFallbackReasons: a key-shaped target egd no
// longer forces append migrations to re-chase — the cache entry resumes
// incrementally — while a non-key egd still falls back, and the
// fallback counter carries the "egd" reason label.
func TestCacheKeyedResumeAndFallbackReasons(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	const keyed = `
setting keyed
source E/2
target H/2
st: E(x,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
t: H(x,y), H(x,z) -> y = z
`
	reg, err := c.Register(ctx, keyed)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := c.RegisterInstance(ctx, "E(a,b).")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExistsSolution(ctx, client.SolveRequest{SettingID: reg.ID, SourceID: inst.ID}); err != nil {
		t.Fatal(err)
	}
	app, err := c.AppendInstance(ctx, inst.ID, client.AppendRequest{Facts: "E(c,d)."})
	if err != nil {
		t.Fatal(err)
	}
	if app.Migrated != 1 || app.Resumed != 1 || app.Fallbacks != 0 {
		t.Fatalf("keyed append migration: %+v, want 1 entry resumed incrementally", app)
	}
	if metricsValue(t, c, "pdxd_chase_cache_resumes_total") != 1 {
		t.Error("resume counter did not move for the keyed setting")
	}
	if metricsValue(t, c, `pdxd_chase_cache_fallbacks_total{reason="egd"}`) != 0 {
		t.Error("keyed append was counted as an egd fallback")
	}

	// A cross-relation egd is not key-shaped: the append must fall back
	// and be attributed to the "egd" reason.
	const crossed = `
setting crossed
source A/2
target T/2, U/2
st: A(x,y) -> T(x,y)
ts: T(x,y) -> A(x,y)
t: T(x,y), U(x,z) -> y = z
`
	reg2, err := c.Register(ctx, crossed)
	if err != nil {
		t.Fatal(err)
	}
	inst2, err := c.RegisterInstance(ctx, "A(a,b).")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExistsSolution(ctx, client.SolveRequest{SettingID: reg2.ID, SourceID: inst2.ID}); err != nil {
		t.Fatal(err)
	}
	app2, err := c.AppendInstance(ctx, inst2.ID, client.AppendRequest{Facts: "A(c,d)."})
	if err != nil {
		t.Fatal(err)
	}
	if app2.Migrated != 1 || app2.Resumed != 0 || app2.Fallbacks != 1 {
		t.Fatalf("crossed append migration: %+v, want 1 entry falling back", app2)
	}
	if metricsValue(t, c, `pdxd_chase_cache_fallbacks_total{reason="egd"}`) != 1 {
		t.Error("egd-reason fallback counter did not move")
	}
	for _, reason := range []string{"failed", "oblivious", "other"} {
		if v := metricsValue(t, c, fmt.Sprintf("pdxd_chase_cache_fallbacks_total{reason=%q}", reason)); v != 0 {
			t.Errorf("fallback reason %q moved to %d, want 0", reason, v)
		}
	}
}
