package server

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rel"
	"repro/internal/snap"
	"repro/pde/client"
)

// solveByID registers the source facts as an instance and solves the
// example1 setting against them, returning the response.
func solveByID(t *testing.T, c *client.Client, settingID, facts string) client.SolveResponse {
	t.Helper()
	ctx := context.Background()
	inst, err := c.RegisterInstance(ctx, facts)
	if err != nil {
		t.Fatalf("register instance: %v", err)
	}
	res, err := c.ExistsSolution(ctx, client.SolveRequest{SettingID: settingID, SourceID: inst.ID})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return res
}

func TestSnapshotWarmRestart(t *testing.T) {
	dir := t.TempDir()
	facts := "E(a,b). E(b,c). E(c,d)."

	store, err := snap.Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	srv, c := newTestServer(t, Config{Snapshots: store})
	reg, err := c.Register(context.Background(), example1)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if res := solveByID(t, c, reg.ID, facts); res.CacheHit {
		t.Fatal("first solve reported a cache hit")
	}
	if res := solveByID(t, c, reg.ID, facts); !res.CacheHit {
		t.Fatal("second solve missed the in-memory cache")
	}
	srv.Close() // flush the write-behind queue
	keys, err := store.List()
	if err != nil || len(keys) == 0 {
		t.Fatalf("no snapshots on disk after close: %v, %v", keys, err)
	}

	// A fresh daemon over the same directory, with the setting
	// preloaded, serves the first solve warm.
	store2, err := snap.Open(dir)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	srv2, c2 := newTestServer(t, Config{Snapshots: store2})
	defer srv2.Close()
	if _, err := c2.Register(context.Background(), example1); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	loaded, failed := srv2.LoadSnapshots()
	if loaded == 0 || failed != 0 {
		t.Fatalf("warm start loaded %d, failed %d", loaded, failed)
	}
	if res := solveByID(t, c2, reg.ID, facts); !res.CacheHit {
		t.Fatal("first solve after warm restart missed the cache")
	}

	// The warm start re-registered the snapshot's instances, so
	// solve-by-ID addresses them without a fresh upload.
	insts, err := c2.Instances(context.Background())
	if err != nil || len(insts.Instances) == 0 {
		t.Fatalf("instances after warm start: %+v, %v", insts, err)
	}
}

func TestSnapshotLoadRejectsUnregisteredSettingAndTamper(t *testing.T) {
	dir := t.TempDir()
	store, err := snap.Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	srv, c := newTestServer(t, Config{Snapshots: store})
	reg, err := c.Register(context.Background(), example1)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	solveByID(t, c, reg.ID, "E(a,b). E(b,c).")
	srv.Close()
	keys, _ := store.List()
	if len(keys) == 0 {
		t.Fatal("no snapshots written")
	}

	// Without the setting registered, every snapshot is rejected and the
	// files stay in place for a later, properly preloaded restart.
	store2, _ := snap.Open(dir)
	srv2, _ := newTestServer(t, Config{Snapshots: store2})
	defer srv2.Close()
	loaded, failed := srv2.LoadSnapshots()
	if loaded != 0 || failed == 0 {
		t.Fatalf("unregistered setting: loaded %d, failed %d", loaded, failed)
	}
	if after, _ := store2.List(); len(after) != len(keys) {
		t.Fatalf("rejected snapshots were deleted: %d of %d left", len(after), len(keys))
	}

	// A flipped byte fails the checksum and the snapshot is skipped.
	path := filepath.Join(dir, keys[0]+".pdxsnap")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	store3, _ := snap.Open(dir)
	srv3, c3 := newTestServer(t, Config{Snapshots: store3})
	defer srv3.Close()
	if _, err := c3.Register(context.Background(), example1); err != nil {
		t.Fatal(err)
	}
	loaded, failed = srv3.LoadSnapshots()
	if failed == 0 {
		t.Fatalf("tampered snapshot was accepted (loaded %d, failed %d)", loaded, failed)
	}
}

func TestWarmTransferFromPeer(t *testing.T) {
	ctx := context.Background()
	facts := "E(a,b). E(b,c)."

	// Peer: a plain daemon (no snapshot dir) with a warm cache.
	_, peer := newTestServer(t, Config{})
	reg, err := peer.Register(ctx, example1)
	if err != nil {
		t.Fatalf("register on peer: %v", err)
	}
	solveByID(t, peer, reg.ID, facts)
	keys, err := peer.CacheKeys(ctx)
	if err != nil || len(keys.Keys) == 0 {
		t.Fatalf("peer cache keys: %+v, %v", keys, err)
	}
	if _, err := peer.CacheEntry(ctx, keys.Keys[0].Key); err != nil {
		t.Fatalf("peer cache entry: %v", err)
	}
	if _, err := peer.CacheEntry(ctx, strings.Repeat("0", 64)); err == nil {
		t.Fatal("fetch of an absent key succeeded")
	}

	// Cold daemon pulls the peer's cache; its first solve is then warm.
	cold, cc := newTestServer(t, Config{})
	if _, err := cc.Register(ctx, example1); err != nil {
		t.Fatalf("register on cold: %v", err)
	}
	pulled, skipped, err := cold.WarmFrom(ctx, peer.Base())
	if err != nil || pulled == 0 {
		t.Fatalf("warm transfer: pulled %d, skipped %d, %v", pulled, skipped, err)
	}
	if res := solveByID(t, cc, reg.ID, facts); !res.CacheHit {
		t.Fatal("first solve after warm transfer missed the cache")
	}
	if got := cold.met.warmTransfers.Load(); got == 0 {
		t.Fatal("warm transfer counter did not move")
	}

	// A second pull skips everything already present.
	pulled, skipped, err = cold.WarmFrom(ctx, peer.Base())
	if err != nil || pulled != 0 || skipped == 0 {
		t.Fatalf("second warm transfer: pulled %d, skipped %d, %v", pulled, skipped, err)
	}

	// Warming from an unreachable peer fails the listing, not the
	// daemon.
	if _, _, err := cold.WarmFrom(ctx, "http://127.0.0.1:1"); err == nil {
		t.Fatal("warm transfer from unreachable peer succeeded")
	}
}

// TestInstanceBytesIgnoresTombstones pins the cache byte accounting to
// live tuples: egd merges tombstone tuples in place, and a tombstoned
// slot must not keep inflating pdxd_chase_cache_bytes.
func TestInstanceBytesIgnoresTombstones(t *testing.T) {
	inst := rel.NewInstance()
	inst.AddTuple("T", rel.Tuple{rel.Const("a"), rel.Null(1)})
	inst.AddTuple("T", rel.Tuple{rel.Const("a"), rel.Const("b")})
	inst.AddTuple("T", rel.Tuple{rel.Const("c"), rel.Const("d")})
	// Merging the null into b rewrites tuple 0 into a duplicate of tuple
	// 1, which tombstones one slot in place.
	inst.MergeValue(rel.Null(1), rel.Const("b"))
	r := inst.Relation("T")
	if r.Len() != 3 || r.LiveLen() != 2 {
		t.Fatalf("merge did not tombstone: len %d live %d", r.Len(), r.LiveLen())
	}
	got := instanceBytes(inst)
	want := instanceBytes(inst.Compact())
	if got != want {
		t.Fatalf("tombstones inflate accounting: %d with tombstones, %d compacted", got, want)
	}
	if got <= 0 {
		t.Fatalf("accounting lost the live tuples: %d", got)
	}
	if instanceBytes(nil) != 0 {
		t.Fatal("nil instance must account to zero")
	}
}
