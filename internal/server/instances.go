package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/pde"
)

// StoredInstance is a registered instance: parsed once, canonicalized,
// frozen, and stored under a content hash of its canonical text, so the
// same set of facts always lands on the same ID and appends that add
// nothing are free no-ops. Everything in it is immutable after
// registration.
type StoredInstance struct {
	// ID is "sha256:" plus the hex digest of the canonical text.
	ID string
	// Text is the canonical text (pde.FormatInstance output).
	Text string
	// Inst is the frozen instance handed to solves. Shared; never
	// mutated.
	Inst *pde.Instance
	// Facts is the number of facts.
	Facts int
	// Parent is the ID of the instance this one was appended from, or
	// empty for directly registered instances.
	Parent string
}

// instanceID hashes canonical instance text to a registry/cache ID.
func instanceID(text string) string {
	sum := sha256.Sum256([]byte(text))
	return "sha256:" + hex.EncodeToString(sum[:])
}

// compileInstance parses and canonicalizes instance text.
func compileInstance(src string) (*StoredInstance, error) {
	inst, err := pde.ParseInstance(src)
	if err != nil {
		return nil, err
	}
	return freezeInstance(inst, ""), nil
}

// freezeInstance canonicalizes and freezes an already-built instance.
func freezeInstance(inst *pde.Instance, parent string) *StoredInstance {
	text := pde.FormatInstance(inst)
	inst.Freeze()
	return &StoredInstance{
		ID:     instanceID(text),
		Text:   text,
		Inst:   inst,
		Facts:  inst.NumFacts(),
		Parent: parent,
	}
}

// InstanceRegistry is the concurrent content-addressed instance store,
// the mirror of Registry for data rather than settings.
type InstanceRegistry struct {
	mu    sync.RWMutex
	byID  map[string]*StoredInstance
	order []string
}

// NewInstanceRegistry returns an empty instance registry.
func NewInstanceRegistry() *InstanceRegistry {
	return &InstanceRegistry{byID: make(map[string]*StoredInstance)}
}

// Register parses and stores instance text under its content hash.
// Idempotent: re-registering returns the existing entry, created=false.
func (r *InstanceRegistry) Register(src string) (*StoredInstance, bool, error) {
	si, err := compileInstance(src)
	if err != nil {
		return nil, false, fmt.Errorf("parsing instance: %w", err)
	}
	return r.insert(si)
}

func (r *InstanceRegistry) insert(si *StoredInstance) (*StoredInstance, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.byID[si.ID]; ok {
		return have, false, nil
	}
	r.byID[si.ID] = si
	r.order = append(r.order, si.ID)
	return si, true, nil
}

// Get returns the stored instance for an ID, or nil.
func (r *InstanceRegistry) Get(id string) *StoredInstance {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byID[id]
}

// List returns the stored instances in registration order.
func (r *InstanceRegistry) List() []*StoredInstance {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*StoredInstance, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.byID[id])
	}
	return out
}

// Evict removes an instance; it reports whether the ID was present.
func (r *InstanceRegistry) Evict(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[id]; !ok {
		return false
	}
	delete(r.byID, id)
	for i, have := range r.order {
		if have == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return true
}

// Len returns the number of stored instances.
func (r *InstanceRegistry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}

// Append builds the instance base ∪ batch and registers it as a child
// of base. It returns the stored child (which is base itself when the
// batch adds nothing), the delta instance holding exactly the
// genuinely new facts, and whether a new registry entry was created.
func (r *InstanceRegistry) Append(base *StoredInstance, batch *pde.Instance) (*StoredInstance, *pde.Instance, bool) {
	delta := pde.NewInstance()
	union := base.Inst.Clone()
	for _, f := range batch.Facts() {
		if union.AddFact(f) {
			delta.AddFact(f)
		}
	}
	if delta.NumFacts() == 0 {
		return base, delta, false
	}
	delta.Freeze()
	child, created, _ := r.insert(freezeInstance(union, base.ID))
	return child, delta, created
}
