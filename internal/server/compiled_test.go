package server

import (
	"context"
	"strings"
	"testing"

	"repro/internal/qplan"
	"repro/pde/client"
)

// keyedSetting carries a target egd, which keeps it off the compiled
// certain-answer path (reason "target-deps") while remaining a valid
// setting for the enumeration path.
const keyedSetting = `
setting keyed
source E/2
target H/2
st: E(x,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
t: H(x,y), H(x,z) -> y = z
`

// TestCertainBatchEndToEnd drives /v1/certain-answers/batch over a
// compilable setting and checks the results agree with the singular
// endpoint, the compiled flag is set, and the plan-cache counters move.
func TestCertainBatchEndToEnd(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	reg, err := c.Register(ctx, example1)
	if err != nil {
		t.Fatal(err)
	}
	source := "E(a,b). E(b,c). E(a,c)."
	queries := []string{
		"q1(x,y) :- H(x,y)",
		"q2(x) :- H(x,y)",
		"q3 :- H(x,y)",
	}
	batch, err := c.CertainBatch(ctx, client.CertainBatchRequest{
		SettingID: reg.ID, Source: source, Queries: queries,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(queries) {
		t.Fatalf("results = %d, want %d", len(batch.Results), len(queries))
	}
	if batch.CacheHit {
		t.Error("compiled batch should not have touched the chase cache")
	}
	for n, q := range queries {
		got := batch.Results[n]
		if !got.Compiled || got.FallbackReason != "" {
			t.Errorf("query %d not compiled: %+v", n, got)
		}
		single, err := c.CertainAnswers(ctx, client.CertainRequest{
			SettingID: reg.ID, Source: source, Query: q,
		})
		if err != nil {
			t.Fatalf("single query %d: %v", n, err)
		}
		if got.SolutionExists != single.SolutionExists || got.Certain != single.Certain ||
			len(got.Answers) != len(single.Answers) {
			t.Errorf("query %d: batch %+v != single %+v", n, got, single)
		}
		for k := range got.Answers {
			if strings.Join(got.Answers[k], ",") != strings.Join(single.Answers[k], ",") {
				t.Errorf("query %d row %d: %v != %v", n, k, got.Answers[k], single.Answers[k])
			}
		}
	}
	if batch.Results[0].Name != "q1" || batch.Results[2].Name != "q3" {
		t.Errorf("result names wrong: %+v", batch.Results)
	}
	// The batch compiled three plans; the singles reused every one.
	if misses := metricsValue(t, c, "pdxd_plan_cache_misses_total"); misses != 3 {
		t.Errorf("plan cache misses = %d, want 3", misses)
	}
	if hits := metricsValue(t, c, "pdxd_plan_cache_hits_total"); hits != 3 {
		t.Errorf("plan cache hits = %d, want 3", hits)
	}

	// A second identical batch is all plan-cache hits.
	if _, err := c.CertainBatch(ctx, client.CertainBatchRequest{
		SettingID: reg.ID, Source: source, Queries: queries,
	}); err != nil {
		t.Fatal(err)
	}
	if hits := metricsValue(t, c, "pdxd_plan_cache_hits_total"); hits != 6 {
		t.Errorf("plan cache hits after second batch = %d, want 6", hits)
	}

	// Eviction drops the setting's cached plans with it.
	if err := c.Evict(ctx, reg.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, example1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CertainAnswers(ctx, client.CertainRequest{
		SettingID: reg.ID, Source: source, Query: queries[0],
	}); err != nil {
		t.Fatal(err)
	}
	if misses := metricsValue(t, c, "pdxd_plan_cache_misses_total"); misses != 4 {
		t.Errorf("plan cache misses after evict+re-register = %d, want 4 (plan recompiled)", misses)
	}

	// Malformed batches are rejected before admission.
	if _, err := c.CertainBatch(ctx, client.CertainBatchRequest{SettingID: reg.ID, Source: source}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := c.CertainBatch(ctx, client.CertainBatchRequest{
		SettingID: reg.ID, Source: source, Queries: []string{"q(x) :- Nope(x)"},
	}); err == nil {
		t.Error("batch with unknown relation accepted")
	}
}

// TestCertainCompiledFallbackMetrics registers a setting outside the
// compilable fragment and checks certain-answer requests fall back to
// enumeration, surface the typed reason, and move the labelled
// fallback counter (singular and batch endpoints).
func TestCertainCompiledFallbackMetrics(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	reg, err := c.Register(ctx, keyedSetting)
	if err != nil {
		t.Fatal(err)
	}
	source := "E(a,b)."
	ca, err := c.CertainAnswers(ctx, client.CertainRequest{
		SettingID: reg.ID, Source: source, Query: "q(x,y) :- H(x,y)",
	})
	if err != nil {
		t.Fatal(err)
	}
	if ca.Compiled || ca.FallbackReason != qplan.FallbackTargetDeps {
		t.Fatalf("fallback response: %+v, want reason %q", ca, qplan.FallbackTargetDeps)
	}
	if !ca.SolutionExists || len(ca.Answers) != 1 || ca.Answers[0][0] != "a" || ca.Answers[0][1] != "b" {
		t.Fatalf("enumeration answers: %+v, want [a b]", ca)
	}

	batch, err := c.CertainBatch(ctx, client.CertainBatchRequest{
		SettingID: reg.ID, Source: source,
		Queries: []string{"q1(x,y) :- H(x,y)", "q2 :- H(x,y)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !batch.CacheHit {
		t.Error("batch enumeration should reuse the chased artifact cached by the singular call")
	}
	for n, got := range batch.Results {
		if got.Compiled || got.FallbackReason != qplan.FallbackTargetDeps {
			t.Errorf("batch result %d: %+v, want enumeration fallback", n, got)
		}
	}
	if !batch.Results[1].Certain || !batch.Results[1].SolutionExists {
		t.Errorf("boolean fallback result: %+v, want certain", batch.Results[1])
	}

	series := `pdxd_certain_compiled_fallbacks_total{reason="` + qplan.FallbackTargetDeps + `"}`
	if v := metricsValue(t, c, series); v != 3 {
		t.Errorf("%s = %d, want 3 (one singular + two batch)", series, v)
	}
	if v := metricsValue(t, c, `pdxd_certain_compiled_fallbacks_total{reason="instance-nulls"}`); v != 0 {
		t.Errorf("unexpected instance-nulls fallbacks: %d", v)
	}
}
