package server

// Multi-shard end-to-end tests: three real pdxd daemons on ephemeral
// ports, clustered over loopback. These drive the full production
// paths — health probes, ring placement, proxying with the forwarded
// header, cluster single-flight, and snapshot handoff after a ring
// change — and assert the fleet-level invariant the cluster exists
// for: one chase per cache identity, no matter which shard the
// requests land on.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/pde"
	"repro/pde/client"
)

// testCluster is a fleet of in-process shards with pre-allocated
// addresses, so every shard knows the full membership before it boots.
type testCluster struct {
	t     *testing.T
	urls  []string
	addrs []string
	srvs  []*Server
	https []*http.Server
	clis  []*client.Client
}

// startTestCluster boots n shards with fast probes and snapshot-less
// config, and waits until every shard sees the whole fleet alive.
func startTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{t: t}
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		tc.addrs = append(tc.addrs, ln.Addr().String())
		tc.urls = append(tc.urls, "http://"+ln.Addr().String())
	}
	tc.srvs = make([]*Server, n)
	tc.https = make([]*http.Server, n)
	tc.clis = make([]*client.Client, n)
	for i := range lns {
		tc.bootShard(i, lns[i])
	}
	for i := range tc.srvs {
		tc.waitAlive(i, n)
	}
	return tc
}

// shardConfig is the per-shard server config (fast probes so liveness
// transitions land within test patience).
func (tc *testCluster) shardConfig(i int) Config {
	return Config{Cluster: &ClusterConfig{
		Self:          tc.urls[i],
		Peers:         tc.urls,
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  time.Second,
	}}
}

// bootShard starts (or restarts) shard i on the given listener.
func (tc *testCluster) bootShard(i int, ln net.Listener) {
	tc.t.Helper()
	s := New(tc.shardConfig(i))
	h := &http.Server{Handler: s.Handler()}
	go func() { _ = h.Serve(ln) }()
	tc.srvs[i], tc.https[i] = s, h
	tc.clis[i] = client.New(tc.urls[i])
	tc.t.Cleanup(func() { _ = h.Close(); s.Close() })
}

// kill stops shard i hard: no drain, in-flight connections dropped.
func (tc *testCluster) kill(i int) {
	tc.t.Helper()
	_ = tc.https[i].Close()
	tc.srvs[i].Close()
	tc.srvs[i] = nil
}

// restart brings a killed shard back, cold, on its original address.
func (tc *testCluster) restart(i int) {
	tc.t.Helper()
	var ln net.Listener
	waitFor(tc.t, "rebinding "+tc.addrs[i], func() bool {
		var err error
		ln, err = net.Listen("tcp", tc.addrs[i])
		return err == nil
	})
	tc.bootShard(i, ln)
}

// waitAlive blocks until shard i sees want live members.
func (tc *testCluster) waitAlive(i, want int) {
	tc.t.Helper()
	s := tc.srvs[i]
	waitFor(tc.t, fmt.Sprintf("shard %d seeing %d live members", i, want), func() bool {
		return s.cluster.ring.AliveCount() == want
	})
}

// ownerComputes sums pdxd_cluster_owner_computes_total over the
// currently live fleet (a killed shard takes its count to the grave).
func (tc *testCluster) ownerComputes() int64 {
	var n int64
	for _, s := range tc.srvs {
		if s != nil {
			n += s.met.clusterOwnerComputes.Load()
		}
	}
	return n
}

// waitFor polls cond until it holds or the test patience runs out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestClusterEndToEnd(t *testing.T) {
	tc := startTestCluster(t, 3)
	ctx := context.Background()

	// Register on shard 0; the broadcast lands it on every live peer
	// synchronously, so proxied solves never trip over a missing
	// setting on the happy path.
	reg, err := tc.clis[0].Register(ctx, example1)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	for i, s := range tc.srvs {
		if s.reg.Get(reg.ID) == nil {
			t.Fatalf("shard %d missed the registration broadcast", i)
		}
	}

	const src = "E(a,b). E(b,c)."
	srcInst, err := pde.ParseInstance(src)
	if err != nil {
		t.Fatal(err)
	}
	srcID := instanceID(pde.FormatInstance(srcInst))

	// Every shard's status endpoint names the same owner for the
	// identity, and it matches the in-process ring.
	var owner string
	for i, cli := range tc.clis {
		cs, err := cli.ClusterStatus(ctx, reg.ID, srcID, "")
		if err != nil {
			t.Fatalf("cluster status via shard %d: %v", i, err)
		}
		if !cs.Enabled || cs.Self != tc.urls[i] || len(cs.Members) != 3 || cs.Owner == "" {
			t.Fatalf("shard %d status: %+v", i, cs)
		}
		if owner == "" {
			owner = cs.Owner
		} else if cs.Owner != owner {
			t.Fatalf("shards disagree on owner: %q vs %q", owner, cs.Owner)
		}
	}
	if want := tc.srvs[0].cluster.ring.Owner(cluster.Key(reg.ID, srcID, emptyInstanceID())); owner != want {
		t.Fatalf("status owner %q, ring says %q", owner, want)
	}
	ownerIdx := -1
	for i, u := range tc.urls {
		if u == owner {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("owner %q is not a member", owner)
	}

	// Storm the fleet: 4 identical solves against every shard at once.
	// Exactly one chase runs cluster-wide — non-owners proxy (and the
	// forwarded solves join the owner's single-flight), the owner
	// computes once.
	req := client.SolveRequest{SettingID: reg.ID, Source: src}
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for i := range tc.clis {
			wg.Add(1)
			go func(cli *client.Client) {
				defer wg.Done()
				res, err := cli.ExistsSolution(ctx, req)
				if err != nil {
					t.Errorf("storm solve: %v", err)
				} else if res.Exists {
					t.Errorf("path instance must have no solution, got %+v", res)
				}
			}(tc.clis[i])
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if n := tc.ownerComputes(); n != 1 {
		t.Fatalf("fleet ran %d chases for one identity, want exactly 1", n)
	}
	if n := tc.srvs[ownerIdx].met.clusterOwnerComputes.Load(); n != 1 {
		t.Fatalf("owner shard computed %d times, want 1", n)
	}
	var proxied int64
	for i, s := range tc.srvs {
		p := s.met.clusterProxied.Load()
		if i == ownerIdx && p != 0 {
			t.Fatalf("owner proxied %d solves to itself", p)
		}
		proxied += p
	}
	if proxied != 8 { // 4 rounds × 2 non-owner shards
		t.Fatalf("fleet proxied %d solves, want 8", proxied)
	}

	// Kill the owner. Survivors notice, the ring reassigns its keys,
	// and the same request still answers correctly via either survivor
	// — at the price of exactly one recompute (the owner's cache died
	// with it).
	tc.kill(ownerIdx)
	for i, s := range tc.srvs {
		if s == nil {
			continue
		}
		tc.waitAlive(i, 2)
	}
	for i, cli := range tc.clis {
		if i == ownerIdx {
			continue
		}
		res, err := cli.ExistsSolution(ctx, req)
		if err != nil {
			t.Fatalf("post-kill solve via shard %d: %v", i, err)
		}
		if res.Exists {
			t.Fatalf("post-kill solve via shard %d: wrong verdict %+v", i, res)
		}
	}
	// Exactly one recompute across the survivors (the dead owner's
	// count — and cache — died with it).
	if n := tc.ownerComputes(); n != 1 {
		t.Fatalf("survivors ran %d chases after failover, want exactly 1", n)
	}

	// Restart the dead shard cold. Once probes mark it alive the keys
	// it owns flow home: the surviving holder pushes the entry over the
	// snapshot wire format — healing the fresh shard's missing setting
	// via register-and-retry — and drops its local copy.
	tc.restart(ownerIdx)
	for i := range tc.srvs {
		tc.waitAlive(i, 3)
	}
	restarted := tc.srvs[ownerIdx]
	waitFor(t, "handoff landing on the restarted shard", func() bool {
		return len(restarted.cache.entries()) == 1
	})
	if restarted.reg.Get(reg.ID) == nil {
		t.Fatal("handoff did not heal the setting on the restarted shard")
	}
	if n := restarted.met.warmTransfers.Load(); n != 1 {
		t.Fatalf("restarted shard installed %d warm transfers, want 1", n)
	}
	var handoffs int64
	for i, s := range tc.srvs {
		if i == ownerIdx {
			continue
		}
		handoffs += s.met.clusterHandoffs.Load()
		if len(s.cache.entries()) != 0 {
			t.Fatalf("shard %d kept a handed-off entry", i)
		}
	}
	if handoffs != 1 {
		t.Fatalf("survivors recorded %d handoffs, want 1", handoffs)
	}

	// The restarted owner serves the identity from the handed-off
	// entry: correct verdict, no new chase anywhere.
	res, err := tc.clis[ownerIdx].ExistsSolution(ctx, req)
	if err != nil {
		t.Fatalf("post-handoff solve: %v", err)
	}
	if res.Exists || !res.CacheHit {
		t.Fatalf("post-handoff solve should cache-hit the handed-off entry: %+v", res)
	}
	if n := tc.ownerComputes(); n != 1 {
		t.Fatalf("fleet ran %d chases after handoff, want still 1 (survivor's recompute)", n)
	}
}

// TestClusterCertainAnswers proxies the certain-answers and batch
// endpoints through a non-owner and checks the owner did the chasing.
func TestClusterCertainAnswers(t *testing.T) {
	tc := startTestCluster(t, 3)
	ctx := context.Background()

	reg, err := tc.clis[0].Register(ctx, example1)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	// The paper's triangle: a solution exists and q(x,y) :- H(x,y) has
	// exactly the certain answer (a, c).
	const src = "E(a,b). E(b,c). E(a,c)."
	srcInst, _ := pde.ParseInstance(src)
	srcID := instanceID(pde.FormatInstance(srcInst))
	cs, err := tc.clis[0].ClusterStatus(ctx, reg.ID, srcID, "")
	if err != nil {
		t.Fatalf("cluster status: %v", err)
	}
	caller := -1
	for i, u := range tc.urls {
		if u != cs.Owner {
			caller = i
			break
		}
	}

	out, err := tc.clis[caller].CertainAnswers(ctx, client.CertainRequest{
		SettingID: reg.ID, Source: src, Query: "q(x,y) :- H(x,y)",
	})
	if err != nil {
		t.Fatalf("certain via non-owner: %v", err)
	}
	if !out.SolutionExists || len(out.Answers) != 1 || out.Answers[0][0] != "a" || out.Answers[0][1] != "c" {
		t.Fatalf("triangle certain answers via non-owner: %+v, want exactly [a c]", out)
	}
	if tc.srvs[caller].met.clusterProxied.Load() == 0 {
		t.Fatal("certain-answers request was not proxied")
	}

	bout, err := tc.clis[caller].CertainBatch(ctx, client.CertainBatchRequest{
		SettingID: reg.ID, Source: src,
		Queries: []string{"q1(x,y) :- H(x,y)", "q2 :- H(x,x)"},
	})
	if err != nil {
		t.Fatalf("batch via non-owner: %v", err)
	}
	if len(bout.Results) != 2 {
		t.Fatalf("batch results: %+v", bout)
	}
	// Any chases this run triggered happened on the owning shard only.
	for i, s := range tc.srvs {
		if tc.urls[i] != cs.Owner && s.met.clusterOwnerComputes.Load() != 0 {
			t.Fatalf("non-owner shard %d chased %d times", i, s.met.clusterOwnerComputes.Load())
		}
	}
}

// TestClusterStatusSingleNode: a plain daemon reports enabled=false and
// no members.
func TestClusterStatusSingleNode(t *testing.T) {
	_, cli := newTestServer(t, Config{})
	cs, err := cli.ClusterStatus(context.Background(), "", "", "")
	if err != nil {
		t.Fatalf("cluster status: %v", err)
	}
	if cs.Enabled || cs.Owner != "" || len(cs.Members) != 0 {
		t.Fatalf("single-node status: %+v", cs)
	}
}
