package server

// The cached solve paths. Solves resolve their instances to content
// IDs, fetch (or compute, once) the chased artifact for the
// (setting, I, J, kind) key, and run only the verdict phase against
// it. Appends migrate affected artifacts to the appended instance by
// resuming the chases with just the new facts (core.Resume*), so warm
// traffic keeps skipping the chase even as instances grow.

import (
	"context"
	"log/slog"
	"net/http"

	"repro/internal/certain"
	"repro/internal/core"
	"repro/internal/qplan"
	"repro/pde"
	"repro/pde/client"
)

// solvePair is a solve's resolved instances plus their cache IDs.
type solvePair struct {
	i, j         *pde.Instance
	srcID, tgtID string
}

// tractableOpts builds the Figure 3 options for one request.
func (s *Server) tractableOpts(ctx context.Context) core.TractableOptions {
	return core.TractableOptions{Parallelism: s.cfg.Parallelism, Ctx: ctx}
}

// solveOpts builds the generic-solver options for one request.
func (s *Server) solveOpts(ctx context.Context, maxNodes int64) core.SolveOptions {
	o := core.SolveOptions{Parallelism: s.cfg.Parallelism, Ctx: ctx, MaxNodes: s.cfg.MaxNodes}
	if maxNodes > 0 {
		o.MaxNodes = maxNodes
	}
	return o
}

// tractableBytes approximates a trace's heap footprint for the cache.
func tractableBytes(t *core.TractableTrace) int64 {
	n := instanceBytes(t.JCan) + instanceBytes(t.ICan) + int64(t.Blocks)*64 + 256
	if t.STResult != nil {
		n += instanceBytes(t.STResult.Instance) + instanceBytes(t.STResult.Start)
	}
	if t.TSResult != nil {
		n += instanceBytes(t.TSResult.Instance) + instanceBytes(t.TSResult.Start)
	}
	return n
}

// canonicalBytes approximates a canonical target's heap footprint.
func canonicalBytes(ct *core.CanonicalTarget) int64 {
	n := instanceBytes(ct.JCan) + int64(256)
	if ct.STResult != nil {
		n += instanceBytes(ct.STResult.Instance) + instanceBytes(ct.STResult.Start)
	}
	if ct.TResult != nil {
		n += instanceBytes(ct.TResult.Instance) + instanceBytes(ct.TResult.Start)
	}
	return n
}

// tractableArtifact returns the cached (or freshly chased) Figure 3
// trace for the pair.
func (s *Server) tractableArtifact(ctx context.Context, c *Compiled, p *solvePair) (*core.TractableTrace, bool, error) {
	key := cacheKey(c.ID, p.srcID, p.tgtID, kindTractable)
	meta := cacheEntry{key: key, settingID: c.ID, srcID: p.srcID, tgtID: p.tgtID, kind: kindTractable, srcInst: p.i, tgtInst: p.j}
	v, hit, err := s.cache.getOrCompute(ctx, key, meta, func() (any, int64, error) {
		tr, err := core.ChaseCanonicalTractable(c.Setting, p.i, p.j, s.tractableOpts(ctx))
		if err != nil {
			return nil, 0, err
		}
		return tr, tractableBytes(tr), nil
	})
	if err != nil {
		return nil, false, err
	}
	if !hit {
		s.countOwnerCompute()
		s.snapshotFill(key)
	}
	return v.(*core.TractableTrace), hit, nil
}

// genericArtifact returns the cached (or freshly chased) canonical
// target for the pair.
func (s *Server) genericArtifact(ctx context.Context, c *Compiled, p *solvePair, sopts core.SolveOptions) (*core.CanonicalTarget, bool, error) {
	key := cacheKey(c.ID, p.srcID, p.tgtID, kindGeneric)
	meta := cacheEntry{key: key, settingID: c.ID, srcID: p.srcID, tgtID: p.tgtID, kind: kindGeneric, srcInst: p.i, tgtInst: p.j}
	v, hit, err := s.cache.getOrCompute(ctx, key, meta, func() (any, int64, error) {
		ct, err := core.ChaseCanonicalTarget(c.Setting, p.i, p.j, sopts)
		if err != nil {
			return nil, 0, err
		}
		return ct, canonicalBytes(ct), nil
	})
	if err != nil {
		return nil, false, err
	}
	if !hit {
		s.countOwnerCompute()
		s.snapshotFill(key)
	}
	return v.(*core.CanonicalTarget), hit, nil
}

// snapshotFill enqueues the freshly computed entry under key for the
// write-behind snapshot worker (no-op without a snapshot store).
func (s *Server) snapshotFill(key string) {
	if s.cfg.Snapshots == nil {
		return
	}
	if e, ok := s.cacheEntryByKey(key); ok {
		s.saveAsync(e)
	}
}

// solveExists runs the SOL(P) verdict from the cached fixpoint,
// mirroring pde's strategy dispatch. The bool reports a cache hit.
func (s *Server) solveExists(ctx context.Context, c *Compiled, p *solvePair, witness bool, maxNodes int64) (pde.Result, bool, error) {
	if c.Strategy == string(pde.StrategyTractable) {
		trace, hit, err := s.tractableArtifact(ctx, c, p)
		if err != nil {
			return pde.Result{}, false, err
		}
		topts := s.tractableOpts(ctx)
		if witness {
			sol, _, err := core.FindSolutionTractableFrom(p.i, trace, topts)
			if err != nil {
				return pde.Result{}, hit, err
			}
			return pde.Result{Exists: sol != nil, Solution: sol, Strategy: pde.StrategyTractable}, hit, nil
		}
		ok, _, err := core.ExistsSolutionTractableFrom(p.i, trace, topts)
		if err != nil {
			return pde.Result{}, hit, err
		}
		return pde.Result{Exists: ok, Strategy: pde.StrategyTractable}, hit, nil
	}

	sopts := s.solveOpts(ctx, maxNodes)
	ct, hit, err := s.genericArtifact(ctx, c, p, sopts)
	if err != nil {
		return pde.Result{}, false, err
	}
	ok, wit, stats, err := core.ExistsSolutionGenericFrom(c.Setting, p.i, p.j, ct, sopts)
	if err != nil {
		return pde.Result{}, hit, err
	}
	res := pde.Result{Exists: ok, Solution: wit, Strategy: pde.StrategyGeneric}
	if stats != nil {
		res.Nodes = stats.Nodes
	}
	return res, hit, nil
}

// planOpts builds the compiled-plan evaluation options for one request.
func (s *Server) planOpts(ctx context.Context) qplan.EvalOptions {
	return qplan.EvalOptions{Parallelism: s.cfg.Parallelism, Ctx: ctx}
}

// certainOutcome is one certain-answers result plus how it was
// produced: from a compiled plan (compiled, no chase at all), or by
// solution enumeration (cacheHit reports whether the chase was cached;
// fallback is the non-empty reason when a compiled setting declined).
type certainOutcome struct {
	res      certain.Result
	cacheHit bool
	compiled bool
	fallback string
}

// solveCertain answers one certain-answers request: the compiled plan
// path when the setting is in the compilable fragment, the
// enumeration path from the cached canonical target otherwise (with
// the fallback reason counted and surfaced).
func (s *Server) solveCertain(ctx context.Context, c *Compiled, p *solvePair, q pde.UCQ) (certainOutcome, error) {
	reason := c.PlanFallback
	if c.Plan != nil {
		plan, cerr := s.queryPlan(c, q)
		if cerr == nil {
			res, err := plan.Eval(p.i, p.j, s.planOpts(ctx))
			if err == nil {
				return certainOutcome{res: res, compiled: true}, nil
			}
			if reason = pde.CompiledFallbackReason(err); reason == "" {
				return certainOutcome{}, err
			}
		} else if reason = pde.CompiledFallbackReason(cerr); reason == "" {
			return certainOutcome{}, cerr
		}
	}
	s.met.compiledFallback(reason).Add(1)
	res, hit, err := s.enumerateCertain(ctx, c, p, q, nil)
	return certainOutcome{res: res, cacheHit: hit, fallback: reason}, err
}

// queryPlan fetches (or compiles and caches) the compiled plan for one
// query of a compilable setting, counting plan-cache traffic.
func (s *Server) queryPlan(c *Compiled, q pde.UCQ) (*pde.Plan, error) {
	plan, hit, err := s.plans.get(c, q)
	if hit {
		s.met.planHits.Add(1)
	} else {
		s.met.planMisses.Add(1)
	}
	return plan, err
}

// enumerateCertain runs the enumeration path from the cached canonical
// target. Certain answers enumerate image solutions, so this uses the
// generic artifact even for tractable settings. A non-nil ct reuses an
// artifact the caller already fetched (batch mode).
func (s *Server) enumerateCertain(ctx context.Context, c *Compiled, p *solvePair, q pde.UCQ, ct *core.CanonicalTarget) (certain.Result, bool, error) {
	sopts := s.solveOpts(ctx, 0)
	hit := true
	if ct == nil {
		var err error
		ct, hit, err = s.genericArtifact(ctx, c, p, sopts)
		if err != nil {
			return certain.Result{}, false, err
		}
	}
	copts := certain.Options{Solve: sopts, Canonical: ct}
	if q[0].IsBoolean() {
		res, err := certain.Boolean(c.Setting, p.i, p.j, q, copts)
		return res, hit, err
	}
	res, err := certain.Answers(c.Setting, p.i, p.j, q, copts)
	return res, hit, err
}

// fitsSetting reports whether every fact of the batch belongs to the
// setting's source or target schema — the precondition for migrating a
// cache entry of that setting across the append.
func fitsSetting(batch *pde.Instance, st *pde.Setting) bool {
	for _, f := range batch.Facts() {
		if ar, ok := st.Source.Arity(f.Rel); ok && ar == len(f.Args) {
			continue
		}
		if ar, ok := st.Target.Arity(f.Rel); ok && ar == len(f.Args) {
			continue
		}
		return false
	}
	return true
}

func (s *Server) handleInstanceRegister(w http.ResponseWriter, r *http.Request) {
	var req client.RegisterInstanceRequest
	if !decode(w, r, &req) {
		return
	}
	si, err := compileInstance(req.Instance)
	if err != nil {
		writeErr(w, http.StatusBadRequest, client.CodeBadRequest, "parsing instance: %v", err)
		return
	}
	si, created, _ := s.inst.insert(si)
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "instance registered",
		slog.String("id", si.ID), slog.Int("facts", si.Facts), slog.Bool("created", created))
	writeJSON(w, status, client.RegisterInstanceResponse{ID: si.ID, Facts: si.Facts, Created: created})
}

func (s *Server) handleInstanceList(w http.ResponseWriter, r *http.Request) {
	all := s.inst.List()
	out := client.ListInstancesResponse{Instances: make([]client.InstanceSummary, 0, len(all))}
	for _, si := range all {
		out.Instances = append(out.Instances, client.InstanceSummary{ID: si.ID, Facts: si.Facts, Parent: si.Parent})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleInstanceEvict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.inst.Evict(id) {
		writeErr(w, http.StatusNotFound, client.CodeNotFound, "instance %q is not registered", id)
		return
	}
	s.cache.evictMatching(func(e *cacheEntry) bool { return e.srcID == id || e.tgtID == id })
	writeJSON(w, http.StatusOK, map[string]string{"evicted": id})
}

func (s *Server) handleInstanceAppend(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req client.AppendRequest
	if !decode(w, r, &req) {
		return
	}
	base := s.inst.Get(id)
	if base == nil {
		writeErr(w, http.StatusNotFound, client.CodeNotFound, "instance %q is not registered", id)
		return
	}
	batch, err := pde.ParseInstance(req.Facts)
	if err != nil {
		writeErr(w, http.StatusBadRequest, client.CodeBadRequest, "parsing facts: %v", err)
		return
	}
	// Migration resumes chases, so it runs under admission control and
	// the request deadline like any solve.
	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.DeadlineMillis))
	defer cancel()
	release := s.admit(ctx, w)
	if release == nil {
		return
	}
	defer release()

	child, delta, created := s.inst.Append(base, batch)
	out := client.AppendResponse{
		ID:      child.ID,
		Parent:  base.ID,
		Added:   delta.NumFacts(),
		Facts:   child.Facts,
		Created: created,
	}
	if delta.NumFacts() > 0 {
		out.Migrated, out.Resumed, out.Fallbacks = s.migrateCache(ctx, base.ID, child, delta)
	}
	s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "instance appended",
		slog.String("base", base.ID), slog.String("id", child.ID),
		slog.Int("added", out.Added), slog.Int("migrated", out.Migrated),
		slog.Int("resumed", out.Resumed), slog.Int("fallbacks", out.Fallbacks))
	writeJSON(w, http.StatusOK, out)
}

// migrateCache carries every cache entry referencing the base instance
// over to the appended instance by resuming its chases with the delta.
// Entries whose setting is gone or whose schema the delta does not fit
// are skipped (the new instance simply starts cold for them); resume
// errors (deadline, budget) likewise skip the entry.
func (s *Server) migrateCache(ctx context.Context, baseID string, child *StoredInstance, delta *pde.Instance) (migrated, resumes, fallbacks int) {
	for _, e := range s.cache.entries() {
		if e.srcID != baseID && e.tgtID != baseID {
			continue
		}
		c := s.reg.Get(e.settingID)
		if c == nil || !fitsSetting(delta, c.Setting) {
			continue
		}
		newSrc, newTgt := e.srcID, e.tgtID
		newSrcInst, newTgtInst := e.srcInst, e.tgtInst
		if newSrc == baseID {
			newSrc, newSrcInst = child.ID, child.Inst
		}
		if newTgt == baseID {
			newTgt, newTgtInst = child.ID, child.Inst
		}
		meta := cacheEntry{
			key:       cacheKey(e.settingID, newSrc, newTgt, e.kind),
			settingID: e.settingID,
			srcID:     newSrc,
			tgtID:     newTgt,
			kind:      e.kind,
			srcInst:   newSrcInst,
			tgtInst:   newTgtInst,
		}
		var resumed bool
		var reason string
		switch e.kind {
		case kindTractable:
			next, r, why, err := core.ResumeCanonicalTractable(c.Setting, e.value.(*core.TractableTrace), delta, s.tractableOpts(ctx))
			if err != nil {
				s.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "cache migration failed",
					slog.String("setting", e.settingID), slog.String("err", err.Error()))
				continue
			}
			s.cache.put(meta, next, tractableBytes(next))
			resumed, reason = r, why
		case kindGeneric:
			next, r, why, err := core.ResumeCanonicalTarget(c.Setting, e.value.(*core.CanonicalTarget), delta, s.solveOpts(ctx, 0))
			if err != nil {
				s.cfg.Logger.LogAttrs(ctx, slog.LevelWarn, "cache migration failed",
					slog.String("setting", e.settingID), slog.String("err", err.Error()))
				continue
			}
			s.cache.put(meta, next, canonicalBytes(next))
			resumed, reason = r, why
		default:
			continue
		}
		migrated++
		s.snapshotFill(meta.key)
		if resumed {
			resumes++
			s.met.cacheResumes.Add(1)
		} else {
			fallbacks++
			s.met.fallback(reason).Add(1)
		}
	}
	return migrated, resumes, fallbacks
}

// solveCertainBatch answers many queries over one instance pair,
// sharing the per-pair work: the setting's solution probes run at most
// once (every compiled plan evaluates against that verdict), and the
// queries that fall off the compiled path share one chased artifact.
func (s *Server) solveCertainBatch(ctx context.Context, c *Compiled, p *solvePair, queries []pde.UCQ) (client.CertainBatchResponse, error) {
	out := client.CertainBatchResponse{Results: make([]client.CertainBatchResult, len(queries))}

	// Lazy shared state: neither the probes nor the chase run unless
	// some query needs them.
	var (
		probesDone bool
		solExists  bool
		probeErr   error
		ct         *core.CanonicalTarget
	)
	probes := func() (bool, error) {
		if !probesDone {
			probesDone = true
			solExists, probeErr = c.Plan.SolutionExists(p.i, p.j, s.planOpts(ctx))
		}
		return solExists, probeErr
	}
	artifact := func() (*core.CanonicalTarget, error) {
		if ct == nil {
			a, hit, err := s.genericArtifact(ctx, c, p, s.solveOpts(ctx, 0))
			if err != nil {
				return nil, err
			}
			ct, out.CacheHit = a, hit
		}
		return ct, nil
	}

	for n, q := range queries {
		reason := c.PlanFallback
		if c.Plan != nil {
			plan, cerr := s.queryPlan(c, q)
			if cerr == nil {
				ex, err := probes()
				if err == nil {
					var res certain.Result
					if res, err = plan.EvalGiven(ex, p.i, p.j, s.planOpts(ctx)); err == nil {
						out.Results[n] = batchResult(q, res, true, "")
						continue
					}
				}
				if reason = pde.CompiledFallbackReason(err); reason == "" {
					return out, err
				}
			} else if reason = pde.CompiledFallbackReason(cerr); reason == "" {
				return out, cerr
			}
		}
		s.met.compiledFallback(reason).Add(1)
		a, err := artifact()
		if err != nil {
			return out, err
		}
		res, _, err := s.enumerateCertain(ctx, c, p, q, a)
		if err != nil {
			return out, err
		}
		out.Results[n] = batchResult(q, res, false, reason)
	}
	return out, nil
}

// batchResult converts one certain-answers result to its wire form.
func batchResult(q pde.UCQ, res certain.Result, compiled bool, fallback string) client.CertainBatchResult {
	r := client.CertainBatchResult{
		Name:           q[0].Name,
		SolutionExists: res.SolutionExists,
		Certain:        res.Certain,
		Compiled:       compiled,
		FallbackReason: fallback,
	}
	for _, t := range res.Answers {
		row := make([]string, len(t))
		for k, v := range t {
			row[k] = v.String()
		}
		r.Answers = append(r.Answers, row)
	}
	return r
}
