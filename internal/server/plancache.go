package server

// planCache holds compiled certain-answer query plans, keyed by setting
// ID plus the canonical text of the query. Compiling a plan is cheap
// next to a chase but not free (unfolding is exponential in the worst
// case, bounded by the disjunct budget), and serving workloads ask the
// same queries repeatedly — so plans are cached LRU with hit/miss
// counters feeding /metrics.

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"sync"

	"repro/pde"
)

// planCacheMaxEntries bounds the number of cached query plans. Plans
// are small (a few disjuncts of a few atoms), so a count bound
// suffices.
const planCacheMaxEntries = 4096

type planKey struct {
	settingID string
	queryHash string
}

// queryHash returns the cache key component of a query: the hex sha256
// of its canonical text, so formatting differences never split cache
// entries.
func queryHash(q pde.UCQ) string {
	var b strings.Builder
	for _, cq := range q {
		b.WriteString(cq.String())
		b.WriteByte('\n')
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

type planCacheEntry struct {
	key  planKey
	plan *pde.Plan
	err  error // non-nil for queries the setting plan refuses (plan-too-large)
}

// planCache is a mutex-guarded LRU. Negative results (a typed
// compile-time fallback for this particular query) are cached too, so
// repeated over-budget queries don't recompile the unfolding each time.
type planCache struct {
	mu    sync.Mutex
	max   int
	items map[planKey]*list.Element
	order *list.List // front = most recently used
}

func newPlanCache(max int) *planCache {
	return &planCache{
		max:   max,
		items: make(map[planKey]*list.Element),
		order: list.New(),
	}
}

// get returns the cached plan or compiles (and caches) it. hit reports
// whether the plan came from the cache. err is the compile error, if
// any — cached alongside the plan.
func (pc *planCache) get(c *Compiled, q pde.UCQ) (plan *pde.Plan, hit bool, err error) {
	key := planKey{settingID: c.ID, queryHash: queryHash(q)}
	pc.mu.Lock()
	if el, ok := pc.items[key]; ok {
		pc.order.MoveToFront(el)
		e := el.Value.(*planCacheEntry)
		pc.mu.Unlock()
		return e.plan, true, e.err
	}
	pc.mu.Unlock()

	// Compile outside the lock: plans are deterministic, so two racing
	// compilations of the same key produce interchangeable values.
	plan, err = c.Plan.CompileQuery(q)
	e := &planCacheEntry{key: key, plan: plan, err: err}

	pc.mu.Lock()
	if el, ok := pc.items[key]; ok {
		// Lost the race; the first insert wins.
		pc.order.MoveToFront(el)
		have := el.Value.(*planCacheEntry)
		pc.mu.Unlock()
		return have.plan, true, have.err
	}
	pc.items[key] = pc.order.PushFront(e)
	for len(pc.items) > pc.max {
		last := pc.order.Back()
		pc.order.Remove(last)
		delete(pc.items, last.Value.(*planCacheEntry).key)
	}
	pc.mu.Unlock()
	return plan, false, err
}

// evictSetting drops every cached plan of one setting (registry
// eviction).
func (pc *planCache) evictSetting(settingID string) {
	pc.mu.Lock()
	for key, el := range pc.items {
		if key.settingID == settingID {
			pc.order.Remove(el)
			delete(pc.items, key)
		}
	}
	pc.mu.Unlock()
}

// len returns the number of cached plans.
func (pc *planCache) len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.items)
}
