package server

import (
	"container/list"
	"context"
	"sync"

	"repro/pde"
)

// cacheKind distinguishes the two chased artifacts a (setting, I, J)
// pair can cache. Certain-answers always enumerates image solutions, so
// it needs the generic artifact even for tractable settings; an
// exists-solution against the same pair uses the tractable one. The
// kind is part of the cache key.
type cacheKind string

const (
	kindTractable cacheKind = "tractable"
	kindGeneric   cacheKind = "generic"
)

// cacheKey builds the composite key. IDs are "sha256:<hex>" so '\x00'
// can never occur inside a component.
func cacheKey(settingID, srcID, tgtID string, kind cacheKind) string {
	return settingID + "\x00" + srcID + "\x00" + tgtID + "\x00" + string(kind)
}

// cacheEntry is one cached chased artifact. value is a
// *core.TractableTrace or *core.CanonicalTarget depending on kind; it
// is immutable once done (the From-style solvers never mutate it), so
// any number of solves may share it concurrently.
type cacheEntry struct {
	key       string
	settingID string
	srcID     string
	tgtID     string
	kind      cacheKind
	// srcInst and tgtInst are the resolved instances behind srcID/tgtID,
	// retained so the snapshot store can serialize the entry with the
	// canonical texts a warm start validates against. Both are immutable
	// once the entry is done.
	srcInst *pde.Instance
	tgtInst *pde.Instance
	value   any
	bytes   int64
	done    bool          // computation finished (value/err valid)
	err     error         // leader's failure, observed by waiters once
	ready   chan struct{} // closed when done flips true
}

// chaseCache is the LRU, single-flight store of chased artifacts keyed
// by (setting, source instance, target instance, kind). Entries are
// inserted pending, computed once by the first requester, and evicted
// least-recently-used when the byte or entry budget is exceeded, or
// explicitly when their setting or an underlying instance is evicted.
// Failed computations (budget exhausted, deadline, cancellation) are
// never retained: the pending entry is removed and the next requester
// becomes the new leader.
type chaseCache struct {
	maxBytes   int64
	maxEntries int
	disabled   bool
	met        *metrics

	mu    sync.Mutex // never held across a chase; guards the three fields below
	items map[string]*list.Element
	lru   *list.List // front = most recently used; holds *cacheEntry
	bytes int64
}

func newChaseCache(maxBytes int64, maxEntries int, met *metrics) *chaseCache {
	return &chaseCache{
		maxBytes:   maxBytes,
		maxEntries: maxEntries,
		disabled:   maxEntries < 0,
		met:        met,
		items:      make(map[string]*list.Element),
		lru:        list.New(),
	}
}

func (c *chaseCache) lock()   { c.mu.Lock() }
func (c *chaseCache) unlock() { c.mu.Unlock() }

// getOrCompute returns the cached artifact for key, computing it via
// compute exactly once per concurrent burst. The boolean reports a hit
// (the artifact existed, or another request's computation was joined).
// On compute failure the error is returned and nothing is cached.
func (c *chaseCache) getOrCompute(ctx context.Context, key string, meta cacheEntry, compute func() (any, int64, error)) (any, bool, error) {
	if c.disabled {
		v, _, err := compute()
		return v, false, err
	}
	for {
		c.lock()
		if el, ok := c.items[key]; ok {
			e := el.Value.(*cacheEntry)
			if e.done {
				// Completed entries always hold a value: a failed leader
				// removes its entry before closing ready.
				c.lru.MoveToFront(el)
				c.unlock()
				c.met.cacheHits.Add(1)
				return e.value, true, nil
			}
			ready := e.ready
			c.unlock()
			select {
			case <-ready:
				// The leader finished (or failed and removed the entry);
				// loop to observe the outcome under the lock.
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			continue
		}
		e := &cacheEntry{
			key:       key,
			settingID: meta.settingID,
			srcID:     meta.srcID,
			tgtID:     meta.tgtID,
			kind:      meta.kind,
			srcInst:   meta.srcInst,
			tgtInst:   meta.tgtInst,
			ready:     make(chan struct{}),
		}
		c.items[key] = c.lru.PushFront(e)
		c.unlock()
		c.met.cacheMisses.Add(1)

		v, bytes, err := compute()
		c.lock()
		e.value, e.bytes, e.err, e.done = v, bytes, err, true
		if err != nil {
			c.removeLocked(key)
		} else {
			c.bytes += bytes
			c.evictOverBudgetLocked(key)
		}
		c.unlock()
		close(e.ready)
		return v, false, err
	}
}

// put inserts a completed artifact directly (append migration). An
// existing entry for the key — even a pending one — wins; migration is
// best-effort and must not clobber an in-flight leader.
func (c *chaseCache) put(meta cacheEntry, value any, bytes int64) {
	if c.disabled {
		return
	}
	c.lock()
	defer c.unlock()
	if _, ok := c.items[meta.key]; ok {
		return
	}
	e := &cacheEntry{
		key:       meta.key,
		settingID: meta.settingID,
		srcID:     meta.srcID,
		tgtID:     meta.tgtID,
		kind:      meta.kind,
		srcInst:   meta.srcInst,
		tgtInst:   meta.tgtInst,
		value:     value,
		bytes:     bytes,
		done:      true,
		ready:     make(chan struct{}),
	}
	close(e.ready)
	c.items[meta.key] = c.lru.PushFront(e)
	c.bytes += bytes
	c.evictOverBudgetLocked(meta.key)
}

// entries snapshots the completed entries, most recently used first
// (append migration walks this without holding the lock across chases).
func (c *chaseCache) entries() []*cacheEntry {
	if c.disabled {
		return nil
	}
	c.lock()
	defer c.unlock()
	out := make([]*cacheEntry, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*cacheEntry); e.done && e.err == nil {
			out = append(out, e)
		}
	}
	return out
}

// evictMatching removes every completed entry the predicate selects and
// returns how many went. Pending entries are skipped: their leader owns
// them until done.
func (c *chaseCache) evictMatching(match func(*cacheEntry) bool) int {
	if c.disabled {
		return 0
	}
	c.lock()
	defer c.unlock()
	n := 0
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); e.done && match(e) {
			c.removeLocked(e.key)
			c.met.cacheEvictions.Add(1)
			n++
		}
		el = next
	}
	return n
}

// stats returns the current entry count and byte total.
func (c *chaseCache) stats() (entries int, bytes int64) {
	if c.disabled {
		return 0, 0
	}
	c.lock()
	defer c.unlock()
	return c.lru.Len(), c.bytes
}

// evictOverBudgetLocked drops least-recently-used completed entries
// until the cache fits its budgets again. The just-inserted key is
// spared so a single oversized artifact still serves its own request
// burst; it goes next time something else lands.
func (c *chaseCache) evictOverBudgetLocked(justInserted string) {
	over := func() bool {
		if c.maxEntries > 0 && c.lru.Len() > c.maxEntries {
			return true
		}
		return c.maxBytes > 0 && c.bytes > c.maxBytes
	}
	for el := c.lru.Back(); el != nil && over(); {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		if e.done && e.key != justInserted {
			c.removeLocked(e.key)
			c.met.cacheEvictions.Add(1)
		}
		el = prev
	}
}

// removeLocked unlinks an entry from both indexes and the byte total.
func (c *chaseCache) removeLocked(key string) {
	el, ok := c.items[key]
	if !ok {
		return
	}
	e := el.Value.(*cacheEntry)
	if e.done && e.err == nil {
		c.bytes -= e.bytes
	}
	delete(c.items, key)
	c.lru.Remove(el)
}

// instanceBytes approximates the heap footprint of an instance for the
// cache's byte accounting: per-fact map/slice overhead plus the value
// strings. Precision is not the point — bounding growth is. Only live
// tuples count: egd merges tombstone tuples in place rather than
// deleting them, and an accounting that charged tombstoned slots would
// inflate pdxd_chase_cache_bytes after every keyed-egd chase. The walk
// reads relations directly (LiveLen/Live/TupleAt) instead of
// materializing Facts(), so accounting an entry does not itself
// allocate a copy of the instance.
func instanceBytes(inst *pde.Instance) int64 {
	if inst == nil {
		return 0
	}
	var n int64
	for _, name := range inst.RelationNames() {
		r := inst.Relation(name)
		n += int64(r.LiveLen()) * int64(48+len(name))
		for i := 0; i < r.Len(); i++ {
			if !r.Live(i) {
				continue
			}
			for _, v := range r.TupleAt(i) {
				n += 16 + int64(len(v.String()))
			}
		}
	}
	return n
}
