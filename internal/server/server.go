package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/snap"
	"repro/pde"
	"repro/pde/client"
)

// Config tunes a Server. The zero value serves with sensible defaults.
type Config struct {
	// Logger receives one structured record per request; nil discards.
	Logger *slog.Logger
	// MaxInFlight bounds concurrently executing solves (admission
	// control); 0 means GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds solves waiting for an in-flight slot; beyond it
	// requests are shed with 429 immediately. 0 means 2×MaxInFlight;
	// negative means no queue (shed as soon as all slots are busy).
	MaxQueue int
	// DefaultDeadline applies to solves that don't send deadline_ms;
	// 0 means 30s.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines; 0 means 5m.
	MaxDeadline time.Duration
	// MaxNodes is the server-wide generic-solver budget applied when a
	// request doesn't set max_nodes; 0 means unbounded.
	MaxNodes int64
	// Parallelism is handed to every solve (pde.Options.Parallelism);
	// 0 means GOMAXPROCS. Deadlines are the primary isolation knob; this
	// bounds how many cores one request may burn.
	Parallelism int
	// CacheMaxBytes bounds the approximate bytes held by the
	// chased-result cache; 0 means 256 MiB, negative means no byte
	// bound.
	CacheMaxBytes int64
	// CacheMaxEntries bounds the number of cached chased artifacts;
	// 0 means 1024, negative disables the cache entirely.
	CacheMaxEntries int
	// Snapshots, when non-nil, persists completed cache entries to disk
	// (write-behind) and enables warm starts (LoadSnapshots) and peer
	// warm transfer (WarmFrom, the /v1/cache endpoints). nil disables
	// persistence.
	Snapshots *snap.Store
	// Cluster, when non-nil, shards solve traffic across a fleet of
	// daemons over a consistent-hash ring (see cluster.go). nil serves
	// single-node.
	Cluster *ClusterConfig
}

func (c Config) withDefaults() Config {
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 2 * c.MaxInFlight
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.CacheMaxBytes == 0 {
		c.CacheMaxBytes = 256 << 20
	}
	if c.CacheMaxEntries == 0 {
		c.CacheMaxEntries = 1024
	}
	return c
}

// Server is the pdxd HTTP server: a compiled-setting registry plus the
// /v1 JSON API. Create with New, mount Handler on an http.Server.
type Server struct {
	cfg      Config
	reg      *Registry
	inst     *InstanceRegistry
	cache    *chaseCache
	plans    *planCache
	met      *metrics
	sem      chan struct{} // admission slots, cap MaxInFlight
	mux      *http.ServeMux
	draining atomic.Bool
	cluster  *clusterState // nil without cfg.Cluster

	// Write-behind snapshot machinery (nil/idle without cfg.Snapshots).
	snapQ      chan *cacheEntry
	snapDone   chan struct{}
	snapMu     sync.Mutex // guards snapClosed against concurrent saveAsync/Close
	snapClosed bool
	closeOnce  sync.Once
}

// New builds a Server with empty registries and an empty chase cache.
// It panics on an invalid cluster config (empty self or peer URL) — a
// deployment error callers should validate before constructing the
// server.
func New(cfg Config) *Server {
	s := &Server{
		cfg:  cfg.withDefaults(),
		reg:  NewRegistry(),
		inst: NewInstanceRegistry(),
		met:  newMetrics(),
	}
	s.cache = newChaseCache(s.cfg.CacheMaxBytes, s.cfg.CacheMaxEntries, s.met)
	s.plans = newPlanCache(planCacheMaxEntries)
	s.sem = make(chan struct{}, s.cfg.MaxInFlight)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/settings", s.route("settings-register", s.handleRegister))
	s.mux.HandleFunc("GET /v1/settings", s.route("settings-list", s.handleList))
	s.mux.HandleFunc("DELETE /v1/settings/{id}", s.route("settings-evict", s.handleEvict))
	s.mux.HandleFunc("POST /v1/instances", s.route("instances-register", s.handleInstanceRegister))
	s.mux.HandleFunc("GET /v1/instances", s.route("instances-list", s.handleInstanceList))
	s.mux.HandleFunc("DELETE /v1/instances/{id}", s.route("instances-evict", s.handleInstanceEvict))
	s.mux.HandleFunc("POST /v1/instances/{id}/append", s.route("instances-append", s.handleInstanceAppend))
	s.mux.HandleFunc("POST /v1/exists-solution", s.route("exists-solution", s.handleExists))
	s.mux.HandleFunc("POST /v1/certain-answers", s.route("certain-answers", s.handleCertain))
	s.mux.HandleFunc("POST /v1/certain-answers/batch", s.route("certain-answers-batch", s.handleCertainBatch))
	s.mux.HandleFunc("POST /v1/classify", s.route("classify", s.handleClassify))
	s.mux.HandleFunc("POST /v1/vet", s.route("vet", s.handleVet))
	s.mux.HandleFunc("GET /v1/cache/keys", s.route("cache-keys", s.handleCacheKeys))
	s.mux.HandleFunc("GET /v1/cache/entries/{key}", s.route("cache-entry", s.handleCacheEntry))
	s.mux.HandleFunc("PUT /v1/cache/entries/{key}", s.route("cache-push", s.handleCachePush))
	s.mux.HandleFunc("GET /v1/cluster", s.route("cluster-status", s.handleClusterStatus))
	s.mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealth))
	s.mux.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	if s.cfg.Snapshots != nil {
		s.snapQ = make(chan *cacheEntry, snapQueueLen)
		s.snapDone = make(chan struct{})
		go s.snapWorker()
	}
	if s.cfg.Cluster != nil {
		st, err := newClusterState(*s.cfg.Cluster)
		if err != nil {
			panic("server: invalid cluster config: " + err.Error())
		}
		s.cluster = st
		go s.clusterMonitor()
	}
	return s
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the compiled-setting registry (for preloading).
func (s *Server) Registry() *Registry { return s.reg }

// Instances exposes the instance registry (for preloading and tests).
func (s *Server) Instances() *InstanceRegistry { return s.inst }

// InFlight returns the number of solves currently executing.
func (s *Server) InFlight() int { return int(s.met.inFlight.Load()) }

// StartDrain makes admission reject new solves with 503 while in-flight
// ones finish. Call before http.Server.Shutdown so long solves stop
// being admitted the moment the drain begins.
func (s *Server) StartDrain() { s.draining.Store(true) }

// statusWriter captures the status code for logs and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// route wraps a handler with request logging and metrics.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		millis := time.Since(start).Milliseconds()
		s.met.observe(name, sw.status, millis)
		s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("route", name),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Int64("duration_ms", millis),
			slog.String("remote", r.RemoteAddr),
		)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // client gone; nothing to do
}

func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, map[string]*client.APIError{
		"error": {Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

// decode reads a JSON body with a size cap.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	data, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err == nil {
		err = json.Unmarshal(data, v)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, client.CodeBadRequest, "decoding request body: %v", err)
		return false
	}
	return true
}

// admit acquires an in-flight slot, queueing up to MaxQueue waiters.
// It returns a release function, or writes the shed/timeout response
// and returns nil.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) func() {
	if s.draining.Load() {
		s.met.shed.Add(1)
		writeErr(w, http.StatusServiceUnavailable, client.CodeShuttingDown, "daemon is draining")
		return nil
	}
	select {
	case s.sem <- struct{}{}:
	default:
		if s.met.queueDepth.Add(1) > int64(s.cfg.MaxQueue) {
			s.met.queueDepth.Add(-1)
			s.met.shed.Add(1)
			writeErr(w, http.StatusTooManyRequests, client.CodeOverloaded,
				"admission queue full (%d in flight, %d queued); retry later", s.cfg.MaxInFlight, s.cfg.MaxQueue)
			return nil
		}
		select {
		case s.sem <- struct{}{}:
			s.met.queueDepth.Add(-1)
		case <-ctx.Done():
			s.met.queueDepth.Add(-1)
			s.met.shed.Add(1)
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				writeErr(w, http.StatusGatewayTimeout, client.CodeDeadlineExceeded, "deadline expired while queued for admission")
			} else {
				writeErr(w, http.StatusServiceUnavailable, client.CodeCanceled, "request canceled while queued for admission")
			}
			return nil
		}
	}
	s.met.inFlight.Add(1)
	return func() {
		s.met.inFlight.Add(-1)
		<-s.sem
	}
}

// deadline computes the per-request solve budget.
func (s *Server) deadline(requestedMillis int64) time.Duration {
	d := s.cfg.DefaultDeadline
	if requestedMillis > 0 {
		d = time.Duration(requestedMillis) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// solveError maps a solve failure onto an HTTP status and error code.
func solveError(err error) (int, string) {
	switch {
	case errors.Is(err, pde.ErrCanceled) && errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, client.CodeDeadlineExceeded
	case errors.Is(err, pde.ErrCanceled):
		return http.StatusServiceUnavailable, client.CodeCanceled
	case errors.Is(err, pde.ErrSearchBudget), errors.Is(err, pde.ErrChaseBudget):
		return http.StatusUnprocessableEntity, client.CodeUnprocessable
	default:
		return http.StatusBadRequest, client.CodeBadRequest
	}
}

// resolveInstance resolves one side of a solve request: inline fact
// text XOR a registered instance ID. Inline instances are canonicalized
// and hashed so they share the chase cache with registered ones; an
// empty side is the empty instance.
func (s *Server) resolveInstance(w http.ResponseWriter, side, inline, byID string) (*pde.Instance, string, bool) {
	switch {
	case inline != "" && byID != "":
		writeErr(w, http.StatusBadRequest, client.CodeBadRequest, "set either %s or %s_id, not both", side, side)
		return nil, "", false
	case byID != "":
		si := s.inst.Get(byID)
		if si == nil {
			writeErr(w, http.StatusNotFound, client.CodeNotFound, "instance %q is not registered", byID)
			return nil, "", false
		}
		return si.Inst, si.ID, true
	default:
		inst, err := pde.ParseInstance(inline)
		if err != nil {
			writeErr(w, http.StatusBadRequest, client.CodeBadRequest, "parsing %s instance: %v", side, err)
			return nil, "", false
		}
		return inst, instanceID(pde.FormatInstance(inst)), true
	}
}

// solveInput resolves the shared preamble of the solve endpoints:
// setting lookup, instance resolution, and schema validation.
func (s *Server) solveInput(w http.ResponseWriter, settingID, source, sourceID, target, targetID string) (*Compiled, *solvePair, bool) {
	c := s.reg.Get(settingID)
	if c == nil {
		writeErr(w, http.StatusNotFound, client.CodeNotFound, "setting %q is not registered", settingID)
		return nil, nil, false
	}
	i, srcID, ok := s.resolveInstance(w, "source", source, sourceID)
	if !ok {
		return nil, nil, false
	}
	j, tgtID, ok := s.resolveInstance(w, "target", target, targetID)
	if !ok {
		return nil, nil, false
	}
	if err := i.ValidateAgainst(c.Setting.Source); err != nil {
		writeErr(w, http.StatusBadRequest, client.CodeBadRequest, "source instance: %v", err)
		return nil, nil, false
	}
	if err := j.ValidateAgainst(c.Setting.Target); err != nil {
		writeErr(w, http.StatusBadRequest, client.CodeBadRequest, "target instance: %v", err)
		return nil, nil, false
	}
	return c, &solvePair{i: i, j: j, srcID: srcID, tgtID: tgtID}, true
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req client.RegisterRequest
	if !decode(w, r, &req) {
		return
	}
	c, created, err := s.reg.Register(req.Setting)
	if err != nil {
		// A setting that parses but fails vet is well-formed input the
		// analyzer refuses — 422; anything unparsable is 400.
		status, code := http.StatusBadRequest, client.CodeBadRequest
		if _, perr := pde.ParseSetting(req.Setting); perr == nil {
			status, code = http.StatusUnprocessableEntity, client.CodeUnprocessable
		}
		writeErr(w, status, code, "registering setting: %v", err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	if created {
		s.clusterBroadcastSetting(r, c)
	}
	s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "setting registered",
		slog.String("id", c.ID), slog.String("name", c.Name),
		slog.String("strategy", c.Strategy), slog.Bool("created", created))
	writeJSON(w, status, client.RegisterResponse{
		ID:       c.ID,
		Name:     c.Name,
		InCtract: c.Report.InCtract,
		Strategy: c.Strategy,
		Warnings: c.Warnings,
		Created:  created,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	all := s.reg.List()
	out := client.ListSettingsResponse{Settings: make([]client.SettingSummary, 0, len(all))}
	for _, c := range all {
		out.Settings = append(out.Settings, client.SettingSummary{
			ID: c.ID, Name: c.Name, InCtract: c.Report.InCtract, Strategy: c.Strategy,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleEvict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.reg.Evict(id) {
		writeErr(w, http.StatusNotFound, client.CodeNotFound, "setting %q is not registered", id)
		return
	}
	s.cache.evictMatching(func(e *cacheEntry) bool { return e.settingID == id })
	s.plans.evictSetting(id)
	writeJSON(w, http.StatusOK, map[string]string{"evicted": id})
}

func (s *Server) handleExists(w http.ResponseWriter, r *http.Request) {
	var req client.SolveRequest
	if !decode(w, r, &req) {
		return
	}
	c, p, ok := s.solveInput(w, req.SettingID, req.Source, req.SourceID, req.Target, req.TargetID)
	if !ok {
		return
	}
	// Cluster routing happens before admission: a proxied solve spends
	// this shard's time waiting on the owner, not computing.
	if owner, cl := s.clusterOwner(r, c.ID, p.srcID, p.tgtID); cl != nil {
		if s.proxyExists(w, r, owner, cl, c, p, req) {
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.DeadlineMillis))
	defer cancel()
	release := s.admit(ctx, w)
	if release == nil {
		return
	}
	defer release()

	start := time.Now()
	res, hit, err := s.solveExists(ctx, c, p, req.Witness, req.MaxNodes)
	s.met.nodes.Add(res.Nodes)
	if err != nil {
		status, code := solveError(err)
		writeErr(w, status, code, "solve: %v", err)
		return
	}
	out := client.SolveResponse{
		Exists:        res.Exists,
		Strategy:      string(res.Strategy),
		Nodes:         res.Nodes,
		CacheHit:      hit,
		ElapsedMillis: time.Since(start).Milliseconds(),
	}
	if req.Witness && res.Solution != nil {
		out.Solution = pde.FormatInstance(res.Solution)
	}
	s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "solve",
		slog.String("setting", c.ID), slog.Bool("exists", res.Exists),
		slog.String("strategy", out.Strategy), slog.Int64("nodes", res.Nodes),
		slog.Bool("cache_hit", hit), slog.Int64("elapsed_ms", out.ElapsedMillis))
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCertain(w http.ResponseWriter, r *http.Request) {
	var req client.CertainRequest
	if !decode(w, r, &req) {
		return
	}
	c, p, ok := s.solveInput(w, req.SettingID, req.Source, req.SourceID, req.Target, req.TargetID)
	if !ok {
		return
	}
	qs, err := pde.ParseQueries(req.Query)
	if err != nil || len(qs) != 1 {
		if err == nil {
			err = fmt.Errorf("want exactly one query, got %d", len(qs))
		}
		writeErr(w, http.StatusBadRequest, client.CodeBadRequest, "parsing query: %v", err)
		return
	}
	if err := qs[0].Validate(c.Setting.Target); err != nil {
		writeErr(w, http.StatusBadRequest, client.CodeBadRequest, "query: %v", err)
		return
	}
	if owner, cl := s.clusterOwner(r, c.ID, p.srcID, p.tgtID); cl != nil {
		if s.proxyCertain(w, r, owner, cl, c, p, req) {
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.DeadlineMillis))
	defer cancel()
	release := s.admit(ctx, w)
	if release == nil {
		return
	}
	defer release()

	start := time.Now()
	oc, err := s.solveCertain(ctx, c, p, qs[0])
	if err != nil {
		status, code := solveError(err)
		writeErr(w, status, code, "certain answers: %v", err)
		return
	}
	out := client.CertainResponse{
		SolutionExists:    oc.res.SolutionExists,
		Certain:           oc.res.Certain,
		SolutionsExamined: oc.res.SolutionsExamined,
		CacheHit:          oc.cacheHit,
		Compiled:          oc.compiled,
		FallbackReason:    oc.fallback,
		ElapsedMillis:     time.Since(start).Milliseconds(),
	}
	for _, t := range oc.res.Answers {
		row := make([]string, len(t))
		for k, v := range t {
			row[k] = v.String()
		}
		out.Answers = append(out.Answers, row)
	}
	s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "certain",
		slog.String("setting", c.ID), slog.Int("answers", len(out.Answers)),
		slog.Bool("compiled", oc.compiled),
		slog.Int64("elapsed_ms", out.ElapsedMillis))
	writeJSON(w, http.StatusOK, out)
}

// maxBatchQueries bounds one batch request; beyond it the request is
// rejected up front rather than admitted and half-served.
const maxBatchQueries = 4096

func (s *Server) handleCertainBatch(w http.ResponseWriter, r *http.Request) {
	var req client.CertainBatchRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, http.StatusBadRequest, client.CodeBadRequest, "batch has no queries")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeErr(w, http.StatusBadRequest, client.CodeBadRequest, "batch has %d queries, max %d", len(req.Queries), maxBatchQueries)
		return
	}
	c, p, ok := s.solveInput(w, req.SettingID, req.Source, req.SourceID, req.Target, req.TargetID)
	if !ok {
		return
	}
	queries := make([]pde.UCQ, len(req.Queries))
	for n, text := range req.Queries {
		qs, err := pde.ParseQueries(text)
		if err != nil || len(qs) != 1 {
			if err == nil {
				err = fmt.Errorf("want exactly one query, got %d", len(qs))
			}
			writeErr(w, http.StatusBadRequest, client.CodeBadRequest, "parsing query %d: %v", n, err)
			return
		}
		if err := qs[0].Validate(c.Setting.Target); err != nil {
			writeErr(w, http.StatusBadRequest, client.CodeBadRequest, "query %d: %v", n, err)
			return
		}
		queries[n] = qs[0]
	}
	if owner, cl := s.clusterOwner(r, c.ID, p.srcID, p.tgtID); cl != nil {
		if s.proxyCertainBatch(w, r, owner, cl, c, p, req) {
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.DeadlineMillis))
	defer cancel()
	release := s.admit(ctx, w)
	if release == nil {
		return
	}
	defer release()

	start := time.Now()
	out, err := s.solveCertainBatch(ctx, c, p, queries)
	if err != nil {
		status, code := solveError(err)
		writeErr(w, status, code, "certain answers: %v", err)
		return
	}
	out.ElapsedMillis = time.Since(start).Milliseconds()
	s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "certain batch",
		slog.String("setting", c.ID), slog.Int("queries", len(queries)),
		slog.Int64("elapsed_ms", out.ElapsedMillis))
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req client.ClassifyRequest
	if !decode(w, r, &req) {
		return
	}
	var report pde.CtractReport
	switch {
	case req.SettingID != "" && req.Setting != "":
		writeErr(w, http.StatusBadRequest, client.CodeBadRequest, "set either setting_id or setting, not both")
		return
	case req.SettingID != "":
		c := s.reg.Get(req.SettingID)
		if c == nil {
			writeErr(w, http.StatusNotFound, client.CodeNotFound, "setting %q is not registered", req.SettingID)
			return
		}
		report = c.Report
	case req.Setting != "":
		st, err := pde.ParseSetting(req.Setting)
		if err != nil {
			writeErr(w, http.StatusBadRequest, client.CodeBadRequest, "parsing setting: %v", err)
			return
		}
		report = pde.Classify(st)
	default:
		writeErr(w, http.StatusBadRequest, client.CodeBadRequest, "set setting_id or setting")
		return
	}
	writeJSON(w, http.StatusOK, client.ClassifyResponse{
		InCtract:   report.InCtract,
		Cond1:      report.Cond1,
		Cond21:     report.Cond21,
		Cond22:     report.Cond22,
		Violations: report.Violations,
		Summary:    report.Summary(),
	})
}

func (s *Server) handleVet(w http.ResponseWriter, r *http.Request) {
	var req client.VetRequest
	if !decode(w, r, &req) {
		return
	}
	file := req.File
	if file == "" {
		file = "<request>"
	}
	report := pde.Vet(req.Setting, file)
	errs, warns, infos := report.Counts()
	out := client.VetResponse{File: report.File, Errors: errs, Warnings: warns, Infos: infos}
	for _, d := range report.Diagnostics {
		out.Diagnostics = append(out.Diagnostics, client.Diagnostic{
			Check:    d.Check,
			Severity: string(d.Severity),
			File:     d.File,
			Line:     d.Line,
			Col:      d.Col,
			Message:  d.Message,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, client.HealthResponse{
		Status:    status,
		Settings:  s.reg.Len(),
		Instances: s.inst.Len(),
		InFlight:  s.InFlight(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	entries, bytes := s.cache.stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = io.WriteString(w, s.met.render(s.reg.Len(), s.inst.Len(), entries, bytes))
	if s.cluster != nil {
		fmt.Fprintf(w, "# HELP pdxd_cluster_peers_alive Ring members this shard currently sees as up (including itself).\n# TYPE pdxd_cluster_peers_alive gauge\npdxd_cluster_peers_alive %d\n",
			s.cluster.ring.AliveCount())
	}
}
