// Package oracle provides brute-force reference deciders and random
// generators for differential testing of the solvers: an exhaustive
// SOL(P) decider for tiny instances, and a generator of small random
// PDE settings covering full/existential tgds on both sides, target
// egds, full target tgds, and disjunctive target-to-source
// dependencies.
//
// The exhaustive decider enumerates every target instance over the
// active domain extended with a few fresh values, up to a fact bound,
// and checks Definition 2 directly. By the small-solution lemma
// (Lemma 2 of the paper), a modest bound suffices for the tiny settings
// generated here.
package oracle

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/rel"
)

// Config bounds the exhaustive search.
type Config struct {
	// MaxFacts bounds the number of facts added to J; 0 means 5.
	MaxFacts int
	// FreshValues is the number of fresh constants adjoined to the
	// active domain; 0 means 2.
	FreshValues int
	// MaxCandidates aborts when the candidate fact space is too large;
	// 0 means 26.
	MaxCandidates int
}

func (c Config) maxFacts() int {
	if c.MaxFacts > 0 {
		return c.MaxFacts
	}
	return 5
}

func (c Config) freshValues() int {
	if c.FreshValues > 0 {
		return c.FreshValues
	}
	return 2
}

func (c Config) maxCandidates() int {
	if c.MaxCandidates > 0 {
		return c.MaxCandidates
	}
	return 26
}

// ExhaustiveSOL decides SOL(P) by brute force. It returns an error when
// the candidate space exceeds the configured bound.
func ExhaustiveSOL(s *core.Setting, i, j *rel.Instance, cfg Config) (bool, error) {
	dom := make([]rel.Value, 0, 8)
	for v := range rel.Union(i, j).ActiveDomain() {
		dom = append(dom, v)
	}
	// Candidate enumeration (and thus witness choice and error text)
	// must not depend on map iteration order.
	sort.Slice(dom, func(a, b int) bool { return dom[a].Less(dom[b]) })
	for f := 0; f < cfg.freshValues(); f++ {
		dom = append(dom, rel.Const(fmt.Sprintf("fresh%d", f+1)))
	}

	var candidates []rel.Fact
	for _, relName := range s.Target.Relations() {
		ar, _ := s.Target.Arity(relName)
		for _, tup := range allTuples(dom, ar) {
			candidates = append(candidates, rel.Fact{Rel: relName, Args: tup})
		}
	}
	if len(candidates) > cfg.maxCandidates() {
		return false, fmt.Errorf("oracle: %d candidate facts exceed the cap of %d", len(candidates), cfg.maxCandidates())
	}

	n := len(candidates)
	maxFacts := cfg.maxFacts()
	for mask := 0; mask < 1<<n; mask++ {
		if bits.OnesCount(uint(mask)) > maxFacts {
			continue
		}
		cand := j.Clone()
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				cand.AddFact(candidates[b])
			}
		}
		if s.IsSolution(i, j, cand) {
			return true, nil
		}
	}
	return false, nil
}

func allTuples(dom []rel.Value, arity int) []rel.Tuple {
	if arity == 0 {
		return []rel.Tuple{{}}
	}
	sub := allTuples(dom, arity-1)
	out := make([]rel.Tuple, 0, len(sub)*len(dom))
	for _, t := range sub {
		for _, v := range dom {
			out = append(out, append(t.Clone(), v))
		}
	}
	return out
}

// RandomSetting generates a small random PDE setting over a fixed tiny
// schema: source {A/1, B/2}, target {T/2}. The shapes cover full and
// existential source-to-target tgds, LAV and join target-to-source
// tgds, optional disjunctive target-to-source dependencies, and
// optional target constraints (an egd or a full tgd).
func RandomSetting(rng *rand.Rand) *core.Setting {
	s := &core.Setting{
		Name:   "fuzz",
		Source: rel.SchemaOf("A", 1, "B", 2),
		Target: rel.SchemaOf("T", 2),
	}
	switch rng.Intn(4) {
	case 0: // full copy
		s.ST = append(s.ST, dep.TGD{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
		})
	case 1: // existential from unary
		s.ST = append(s.ST, dep.TGD{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("u"))},
		})
	case 2: // join body, existential head
		s.ST = append(s.ST, dep.TGD{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x")), dep.NewAtom("B", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("y"), dep.Var("u"))},
		})
	default: // two tgds
		s.ST = append(s.ST,
			dep.TGD{
				Label: "st1",
				Body:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y"))},
				Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
			},
			dep.TGD{
				Label: "st2",
				Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
				Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("u"))},
			})
	}
	switch rng.Intn(4) {
	case 0: // LAV full head
		s.TS = append(s.TS, dep.TGD{
			Label: "ts",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y"))},
		})
	case 1: // LAV existential head
		s.TS = append(s.TS, dep.TGD{
			Label: "ts",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("w"))},
		})
	case 2: // join body
		s.TS = append(s.TS, dep.TGD{
			Label: "ts",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y")), dep.NewAtom("T", dep.Var("y"), dep.Var("z"))},
			Head:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
		})
	default: // disjunctive: T(x,y) -> A(x) | B(x,y)
		s.TSDisj = append(s.TSDisj, dep.DisjunctiveTGD{
			Label: "tsd",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
			Disjuncts: [][]dep.Atom{
				{dep.NewAtom("A", dep.Var("x"))},
				{dep.NewAtom("B", dep.Var("x"), dep.Var("y"))},
			},
		})
	}
	switch rng.Intn(4) {
	case 0:
		s.T = append(s.T, dep.EGD{
			Label: "t-key",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y")), dep.NewAtom("T", dep.Var("x"), dep.Var("z"))},
			Left:  "y", Right: "z",
		})
	case 1:
		s.T = append(s.T, dep.TGD{
			Label: "t-sym",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("y"), dep.Var("x"))},
		})
	}
	if len(s.T) > 0 && len(s.TSDisj) > 0 && rng.Intn(2) == 0 {
		// Keep roughly half of the disjunctive+Σt combinations simpler.
		s.T = nil
	}
	return s
}

// RandomInstance generates a small random (I, J) pair for
// RandomSetting's schema over a two-constant domain.
func RandomInstance(rng *rand.Rand) (*rel.Instance, *rel.Instance) {
	dom := []rel.Value{rel.Const("a"), rel.Const("b")}
	i := rel.NewInstance()
	for _, v := range dom {
		if rng.Intn(2) == 0 {
			i.Add("A", v)
		}
		for _, w := range dom {
			if rng.Intn(3) == 0 {
				i.Add("B", v, w)
			}
		}
	}
	j := rel.NewInstance()
	for f := 0; f < rng.Intn(3); f++ {
		j.Add("T", dom[rng.Intn(2)], dom[rng.Intn(2)])
	}
	return i, j
}
