package oracle_test

import (
	"math/rand"
	"testing"

	"repro/internal/dep"
	"repro/internal/oracle"
	"repro/internal/rel"

	"repro/internal/core"
)

func TestExhaustiveSOLExample1(t *testing.T) {
	s := &core.Setting{
		Name:   "example1",
		Source: rel.SchemaOf("E", 2),
		Target: rel.SchemaOf("H", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("z")), dep.NewAtom("E", dep.Var("z"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))},
		}},
		TS: []dep.TGD{{
			Label: "ts",
			Body:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("y"))},
		}},
	}
	selfLoop := rel.NewInstance()
	selfLoop.Add("E", rel.Const("a"), rel.Const("a"))
	got, err := oracle.ExhaustiveSOL(s, selfLoop, rel.NewInstance(), oracle.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("oracle missed the self-loop solution")
	}

	path := rel.NewInstance()
	path.Add("E", rel.Const("a"), rel.Const("b"))
	path.Add("E", rel.Const("b"), rel.Const("c"))
	got, err = oracle.ExhaustiveSOL(s, path, rel.NewInstance(), oracle.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("oracle found a solution for the unsolvable path instance")
	}
}

func TestExhaustiveSOLCandidateCap(t *testing.T) {
	s := &core.Setting{
		Name:   "cap",
		Source: rel.SchemaOf("A", 1),
		Target: rel.SchemaOf("T", 3), // arity 3 over a big domain -> too many candidates
	}
	i := rel.NewInstance()
	for k := 0; k < 6; k++ {
		i.Add("A", rel.Const(string(rune('a'+k))))
	}
	if _, err := oracle.ExhaustiveSOL(s, i, rel.NewInstance(), oracle.Config{}); err == nil {
		t.Error("candidate cap not enforced")
	}
}

func TestRandomSettingAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := map[bool]int{}
	for trial := 0; trial < 200; trial++ {
		s := oracle.RandomSetting(rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		shapes[s.Classify().InCtract]++
	}
	if shapes[true] == 0 || shapes[false] == 0 {
		t.Errorf("generator should produce settings on both sides of C_tract: %v", shapes)
	}
}

func TestRandomInstanceWithinSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := oracle.RandomSetting(rng)
	for trial := 0; trial < 50; trial++ {
		i, j := oracle.RandomInstance(rng)
		if err := i.ValidateAgainst(s.Source); err != nil {
			t.Fatalf("source instance invalid: %v", err)
		}
		if err := j.ValidateAgainst(s.Target); err != nil {
			t.Fatalf("target instance invalid: %v", err)
		}
	}
}
