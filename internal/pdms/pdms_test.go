package pdms_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/pdms"
	"repro/internal/rel"
)

func example1Setting() *core.Setting {
	return &core.Setting{
		Name:   "example1",
		Source: rel.SchemaOf("E", 2),
		Target: rel.SchemaOf("H", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("z")), dep.NewAtom("E", dep.Var("z"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))},
		}},
		TS: []dep.TGD{{
			Label: "ts",
			Body:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("y"))},
		}},
	}
}

func TestFromPDEStructure(t *testing.T) {
	p, err := pdms.FromPDE(example1Setting())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Storage) != 2 {
		t.Fatalf("storage descriptions = %d, want 2", len(p.Storage))
	}
	var eq, cont int
	for _, sd := range p.Storage {
		if sd.Equality {
			eq++
			if sd.PeerRel != "E" {
				t.Errorf("equality description on %s, want source relation E", sd.PeerRel)
			}
		} else {
			cont++
			if sd.PeerRel != "H" {
				t.Errorf("containment description on %s, want target relation H", sd.PeerRel)
			}
		}
	}
	if eq != 1 || cont != 1 {
		t.Errorf("eq=%d cont=%d, want 1 and 1", eq, cont)
	}
	if len(p.Mappings) != 2 {
		t.Errorf("mappings = %d, want 2", len(p.Mappings))
	}
}

// TestCorrespondence verifies the Section 2 claim: K is a solution for
// (I, J) in P iff the corresponding assignment is a consistent data
// instance of N(P).
func TestCorrespondence(t *testing.T) {
	s := example1Setting()
	p, err := pdms.FromPDE(s)
	if err != nil {
		t.Fatal(err)
	}

	i := rel.NewInstance()
	i.Add("E", rel.Const("a"), rel.Const("b"))
	i.Add("E", rel.Const("b"), rel.Const("c"))
	i.Add("E", rel.Const("a"), rel.Const("c"))
	j := rel.NewInstance()
	local := pdms.PDEDataInstance(s, i, j)

	// K1 = {H(a,c)} is a solution; must be consistent.
	k1 := rel.NewInstance()
	k1.Add("H", rel.Const("a"), rel.Const("c"))
	if !s.IsSolution(i, j, k1) {
		t.Fatal("setup: K1 should be a solution")
	}
	d1 := pdms.DataInstance{Local: local, Peers: pdms.PDESolutionAssignment(i, k1)}
	if !p.Consistent(d1, hom.Options{}) {
		t.Errorf("solution not consistent: %v", p.Inconsistencies(d1, hom.Options{}))
	}

	// K2 = {H(c,a)} is not a solution; must be inconsistent.
	k2 := rel.NewInstance()
	k2.Add("H", rel.Const("c"), rel.Const("a"))
	d2 := pdms.DataInstance{Local: local, Peers: pdms.PDESolutionAssignment(i, k2)}
	if p.Consistent(d2, hom.Options{}) {
		t.Error("non-solution reported consistent")
	}

	// Mutating the source data breaks the equality storage description.
	iMut := i.Clone()
	iMut.Add("E", rel.Const("z"), rel.Const("z"))
	kMut := k1.Clone()
	kMut.Add("H", rel.Const("z"), rel.Const("z"))
	d3 := pdms.DataInstance{Local: local, Peers: pdms.PDESolutionAssignment(iMut, kMut)}
	if p.Consistent(d3, hom.Options{}) {
		t.Error("source mutation not detected by equality storage description")
	}
}

func TestContainmentAllowsAugmentation(t *testing.T) {
	// The target's containment description lets the peer hold more than
	// its local source: J* ⊆ K.
	s := example1Setting()
	p, _ := pdms.FromPDE(s)
	i := rel.NewInstance()
	i.Add("E", rel.Const("a"), rel.Const("a"))
	j := rel.NewInstance() // empty local target
	k := rel.NewInstance()
	k.Add("H", rel.Const("a"), rel.Const("a")) // augmented
	d := pdms.DataInstance{Local: pdms.PDEDataInstance(s, i, j), Peers: pdms.PDESolutionAssignment(i, k)}
	if !p.Consistent(d, hom.Options{}) {
		t.Errorf("augmented target rejected: %v", p.Inconsistencies(d, hom.Options{}))
	}

	// But dropping a local target fact from the peer is inconsistent.
	j2 := rel.NewInstance()
	j2.Add("H", rel.Const("a"), rel.Const("a"))
	d2 := pdms.DataInstance{Local: pdms.PDEDataInstance(s, i, j2), Peers: pdms.PDESolutionAssignment(i, rel.NewInstance())}
	if p.Consistent(d2, hom.Options{}) {
		t.Error("dropped local target fact not detected")
	}
}

func TestStorageDescriptionString(t *testing.T) {
	eq := pdms.StorageDescription{Local: "E_star", PeerRel: "E", Equality: true}
	if got := eq.String(); got != "E_star = E" {
		t.Errorf("String = %q", got)
	}
	cont := pdms.StorageDescription{Local: "H_star", PeerRel: "H"}
	if !strings.Contains(cont.String(), "⊆") {
		t.Errorf("String = %q", cont.String())
	}
}

func TestFromPDERejectsInvalidSetting(t *testing.T) {
	s := example1Setting()
	s.Target = rel.SchemaOf("E", 2)
	if _, err := pdms.FromPDE(s); err == nil {
		t.Error("invalid setting accepted")
	}
}

func TestDefinitionalMappings(t *testing.T) {
	// A PDMS where peer relation Reach is *defined* as the transitive
	// closure of Link (a definitional mapping, per Halevy et al.).
	p := &pdms.PDMS{
		Name:        "tc",
		PeerSchemas: rel.SchemaOf("Link", 2, "Reach", 2),
		Definitional: &datalog.Program{Rules: []datalog.Rule{
			{
				Label: "base",
				Head:  dep.NewAtom("Reach", dep.Var("x"), dep.Var("y")),
				Body:  []dep.Atom{dep.NewAtom("Link", dep.Var("x"), dep.Var("y"))},
			},
			{
				Label: "step",
				Head:  dep.NewAtom("Reach", dep.Var("x"), dep.Var("z")),
				Body:  []dep.Atom{dep.NewAtom("Reach", dep.Var("x"), dep.Var("y")), dep.NewAtom("Link", dep.Var("y"), dep.Var("z"))},
			},
		}},
	}
	good := rel.NewInstance()
	good.Add("Link", rel.Const("a"), rel.Const("b"))
	good.Add("Link", rel.Const("b"), rel.Const("c"))
	good.Add("Reach", rel.Const("a"), rel.Const("b"))
	good.Add("Reach", rel.Const("b"), rel.Const("c"))
	good.Add("Reach", rel.Const("a"), rel.Const("c"))
	if !p.Consistent(pdms.DataInstance{Local: rel.NewInstance(), Peers: good}, hom.Options{}) {
		t.Errorf("exact closure rejected: %v", p.Inconsistencies(pdms.DataInstance{Local: rel.NewInstance(), Peers: good}, hom.Options{}))
	}

	// Missing a derived fact: inconsistent.
	missing := good.Clone()
	bad1 := rel.NewInstance()
	for _, f := range missing.Facts() {
		if f.String() != "Reach(a, c)" {
			bad1.AddFact(f)
		}
	}
	if p.Consistent(pdms.DataInstance{Local: rel.NewInstance(), Peers: bad1}, hom.Options{}) {
		t.Error("incomplete definition accepted")
	}

	// An extra underived fact: also inconsistent (exact definition).
	bad2 := good.Clone()
	bad2.Add("Reach", rel.Const("c"), rel.Const("a"))
	if p.Consistent(pdms.DataInstance{Local: rel.NewInstance(), Peers: bad2}, hom.Options{}) {
		t.Error("overfull definition accepted")
	}
}

func TestFromPDEHasNoDefinitionalMappings(t *testing.T) {
	p, err := pdms.FromPDE(example1Setting())
	if err != nil {
		t.Fatal(err)
	}
	if p.Definitional != nil {
		t.Error("the paper's N(P) construction must not produce definitional mappings")
	}
}

func TestDefinitionalViolationOrderIsDeterministic(t *testing.T) {
	// Two defined relations, both violated: the report must come out in
	// relation order on every run, not in map iteration order.
	p := &pdms.PDMS{
		Name:        "multi",
		PeerSchemas: rel.SchemaOf("Link", 2, "Fwd", 2, "Rev", 2),
		Definitional: &datalog.Program{Rules: []datalog.Rule{
			{
				Label: "fwd",
				Head:  dep.NewAtom("Fwd", dep.Var("x"), dep.Var("y")),
				Body:  []dep.Atom{dep.NewAtom("Link", dep.Var("x"), dep.Var("y"))},
			},
			{
				Label: "rev",
				Head:  dep.NewAtom("Rev", dep.Var("y"), dep.Var("x")),
				Body:  []dep.Atom{dep.NewAtom("Link", dep.Var("x"), dep.Var("y"))},
			},
		}},
	}
	peers := rel.NewInstance()
	peers.Add("Link", rel.Const("a"), rel.Const("b"))
	d := pdms.DataInstance{Local: rel.NewInstance(), Peers: peers}

	first := p.Inconsistencies(d, hom.Options{})
	if len(first) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(first), first)
	}
	if !strings.Contains(first[0], "Fwd") || !strings.Contains(first[1], "Rev") {
		t.Errorf("violations not in relation order: %v", first)
	}
	for run := 0; run < 20; run++ {
		again := p.Inconsistencies(d, hom.Options{})
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("violation order changed between runs:\n%v\n%v", first, again)
		}
	}
}
