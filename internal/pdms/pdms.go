// Package pdms implements the fragment of peer data management systems
// (Halevy et al.) needed for the Section 2 correspondence of the peer
// data exchange paper: peers with local sources related to their schema
// by storage descriptions, and peer mappings between peer schemas.
//
// The paper shows that every PDE setting P = (S, T, Σst, Σts, Σt) can be
// viewed as a PDMS N(P) with an equality storage description S_i* = S_i
// for each source relation, a containment storage description
// T_j* ⊆ T_j for each target relation, and peer mappings given by the
// constraints of P. Solutions for (I, J) in P then coincide with the
// consistent data instances of N(P). The package implements the
// translation and the consistency check so the correspondence can be
// tested and measured.
package pdms

import (
	"fmt"
	"sort"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
)

// StorageDescription relates a peer's local source relation to a
// relation of the peer's schema. The paper's general form allows an
// arbitrary query over the local sources; the PDE translation only needs
// the replica form where the local relation mirrors one peer relation.
type StorageDescription struct {
	// Local is the local source relation name (the paper's R*).
	Local string
	// PeerRel is the peer schema relation R.
	PeerRel string
	// Equality selects an equality description R* = R; otherwise the
	// description is the containment R* ⊆ R.
	Equality bool
}

// String renders the description.
func (sd StorageDescription) String() string {
	if sd.Equality {
		return fmt.Sprintf("%s = %s", sd.Local, sd.PeerRel)
	}
	return fmt.Sprintf("%s ⊆ %s", sd.Local, sd.PeerRel)
}

// PDMS is a two-peer peer data management system in the fragment used
// by the correspondence: storage descriptions in replica form, peer
// mappings given by dependencies over the union of the peer schemas,
// and — completing the mapping language of Halevy et al. — optional
// definitional mappings given as a positive Datalog program whose
// defined (head) relations must equal the program's least fixpoint over
// the peer assignment.
type PDMS struct {
	// Name identifies the system.
	Name string
	// PeerSchemas is the union of the peers' schemas.
	PeerSchemas *rel.Schema
	// Storage holds the storage descriptions of both peers.
	Storage []StorageDescription
	// Mappings are the peer mappings (inclusion mappings rendered as
	// tgds, plus egds from Σt).
	Mappings []dep.Dependency
	// Definitional is an optional Datalog program of definitional
	// mappings; nil when absent. The paper's PDE translation never
	// produces one ("N(P) has no definitional mappings").
	Definitional *datalog.Program
}

// LocalName derives the local replica relation name for a peer
// relation (the paper's starred copy).
func LocalName(peerRel string) string { return peerRel + "_star" }

// FromPDE builds the PDMS N(P) of the Section 2 construction.
func FromPDE(s *core.Setting) (*PDMS, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	union, err := s.Source.Union(s.Target)
	if err != nil {
		return nil, err
	}
	p := &PDMS{Name: "N(" + s.Name + ")", PeerSchemas: union}
	for _, r := range s.Source.Relations() {
		p.Storage = append(p.Storage, StorageDescription{Local: LocalName(r), PeerRel: r, Equality: true})
	}
	for _, r := range s.Target.Relations() {
		p.Storage = append(p.Storage, StorageDescription{Local: LocalName(r), PeerRel: r})
	}
	p.Mappings = append(p.Mappings, s.ExchangeDeps()...)
	p.Mappings = append(p.Mappings, s.T...)
	return p, nil
}

// DataInstance pairs an assignment of the local sources with an
// assignment of the peer schemas: Local is the fixed data instance D
// restricted to the local sources (relations named by LocalName), and
// Peers is the candidate assignment G to the peer relations.
type DataInstance struct {
	Local *rel.Instance
	Peers *rel.Instance
}

// Consistent reports whether the peer assignment is consistent with the
// system and the local data: every storage description holds between
// the local sources and the peer relations, and the peer relations
// satisfy every peer mapping.
func (p *PDMS) Consistent(d DataInstance, opts hom.Options) bool {
	return len(p.Inconsistencies(d, opts)) == 0
}

// Inconsistencies explains every violated storage description and peer
// mapping.
func (p *PDMS) Inconsistencies(d DataInstance, opts hom.Options) []string {
	var out []string
	for _, sd := range p.Storage {
		local := relationFacts(d.Local, sd.Local)
		peer := relationFacts(d.Peers, sd.PeerRel)
		if sd.Equality {
			if !sameFacts(local, peer, sd.Local, sd.PeerRel) {
				out = append(out, fmt.Sprintf("storage description %s violated", sd))
			}
			continue
		}
		for _, t := range local {
			if !containsTuple(peer, t) {
				out = append(out, fmt.Sprintf("storage description %s violated: %s%s missing", sd, sd.PeerRel, t))
				break
			}
		}
	}
	for _, v := range chase.Violations(d.Peers, p.Mappings, opts) {
		out = append(out, fmt.Sprintf("peer mapping violated: %s", v))
	}
	out = append(out, p.definitionalViolations(d, opts)...)
	return out
}

// definitionalViolations checks the definitional mappings: every
// defined relation of the Datalog program must hold exactly the facts
// of the program's least fixpoint over the peer assignment (exact
// definitions, per Halevy et al.'s interpretation).
func (p *PDMS) definitionalViolations(d DataInstance, opts hom.Options) []string {
	if p.Definitional == nil {
		return nil
	}
	fix, err := p.Definitional.Eval(d.Peers, datalog.Options{Hom: opts})
	if err != nil {
		return []string{fmt.Sprintf("definitional mappings: %v", err)}
	}
	// Violations are reported (and asserted on in tests) in relation
	// order, not map iteration order.
	idb := make([]string, 0, len(p.Definitional.IDB()))
	for relName := range p.Definitional.IDB() {
		idb = append(idb, relName)
	}
	sort.Strings(idb)
	var out []string
	for _, relName := range idb {
		have := relationFacts(d.Peers, relName)
		want := relationFacts(fix, relName)
		if len(have) != len(want) {
			out = append(out, fmt.Sprintf("definitional mapping violated: %s has %d facts, its definition derives %d", relName, len(have), len(want)))
			continue
		}
		for _, t := range want {
			if !containsTuple(have, t) {
				out = append(out, fmt.Sprintf("definitional mapping violated: %s misses derived fact %s%s", relName, relName, t))
				break
			}
		}
	}
	return out
}

// PDEDataInstance builds the data instance of N(P) corresponding to the
// PDE inputs (I, J): the local sources hold starred copies of I and J.
func PDEDataInstance(s *core.Setting, i, j *rel.Instance) *rel.Instance {
	local := rel.NewInstance()
	for _, f := range i.Facts() {
		local.AddTuple(LocalName(f.Rel), f.Args)
	}
	for _, f := range j.Facts() {
		local.AddTuple(LocalName(f.Rel), f.Args)
	}
	return local
}

// PDESolutionAssignment builds the peer assignment corresponding to a
// candidate solution K: the source peer holds I and the target peer
// holds K.
func PDESolutionAssignment(i, k *rel.Instance) *rel.Instance {
	return rel.Union(i, k)
}

func relationFacts(inst *rel.Instance, name string) []rel.Tuple {
	r := inst.Relation(name)
	if r == nil {
		return nil
	}
	return r.Tuples()
}

func containsTuple(tuples []rel.Tuple, t rel.Tuple) bool {
	for _, u := range tuples {
		if u.String() == t.String() {
			return true
		}
	}
	return false
}

func sameFacts(a, b []rel.Tuple, _, _ string) bool {
	if len(a) != len(b) {
		return false
	}
	for _, t := range a {
		if !containsTuple(b, t) {
			return false
		}
	}
	return true
}
