// Package uni implements the data-exchange substrate the peer data
// exchange paper builds on: canonical universal solutions (Fagin,
// Kolaitis, Miller, Popa — "Data exchange: semantics and query
// answering") and cores of instances with labeled nulls (Fagin,
// Kolaitis, Popa — "Data exchange: getting to the core").
//
// In the data-exchange fragment of a PDE setting (Σts = ∅), the chase
// of (I, J) with Σst ∪ Σt yields a canonical universal solution: it has
// a homomorphism into every solution, certain answers of unions of
// conjunctive queries are its null-free answers, and its core is the
// smallest universal solution. The peer data exchange paper re-uses all
// three facts (Lemmas 1–4), which is why this package exists as a
// separately tested substrate.
package uni

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
)

// CanonicalResult reports a canonical-universal-solution computation.
type CanonicalResult struct {
	// Solution is the canonical universal solution (target instance,
	// possibly with labeled nulls), or nil when the chase failed.
	Solution *rel.Instance
	// Failed reports a failing chase (an egd equated two constants): no
	// solution exists.
	Failed bool
	// Steps counts chase steps.
	Steps int
}

// CanonicalSolution computes the canonical universal solution of the
// data-exchange fragment of the setting: the chase of (I, J) with
// Σst ∪ Σt. The setting's Σts is ignored — callers wanting full PDE
// semantics use core.ExistsSolutionGeneric instead. An error is
// returned when the chase exhausts its budget (possible only without
// weak acyclicity) or when the setting is invalid.
func CanonicalSolution(s *core.Setting, i, j *rel.Instance, opts chase.Options) (*CanonicalResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	deps := s.StDeps()
	deps = append(deps, s.T...)
	res, err := chase.Run(rel.Union(i, j), deps, opts)
	if err != nil {
		return nil, fmt.Errorf("uni: chasing Σst ∪ Σt: %w", err)
	}
	if res.Failed {
		return &CanonicalResult{Failed: true, Steps: res.Steps}, nil
	}
	return &CanonicalResult{Solution: res.Instance.Restrict(s.Target), Steps: res.Steps}, nil
}

// Core computes the core of an instance with labeled nulls: the
// smallest retract, i.e. the image of an idempotent endomorphism that
// is the identity on constants, unique up to isomorphism.
//
// Algorithm (blockwise, after Fagin-Kolaitis-Popa): because the blocks
// of the instance share no nulls, every endomorphism decomposes into
// independent per-block homomorphisms; the instance is a core iff no
// single block admits a homomorphism into the whole instance whose
// induced image is strictly smaller. We repeatedly search such a
// shrinking block homomorphism and apply it until none exists. Each
// application strictly reduces the fact count, so the loop terminates;
// each search is exponential only in the block size (constant for
// chase results of C_tract settings, Theorem 6).
func Core(k *rel.Instance, opts hom.Options) *rel.Instance {
	cur := k.Clone()
	for {
		// The shrink fixpoint is unbounded in the instance size, so it
		// must poll like every other hot loop. As with the hom searches
		// it wraps, a canceled run returns the instance shrunk so far,
		// which need not be the core: callers that set opts.Ctx MUST
		// check Ctx.Err() afterwards and discard the result when non-nil.
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return cur
		}
		shrunk := false
		for _, block := range hom.Blocks(cur) {
			if len(block.Nulls) == 0 {
				continue // ground facts are fixed by every endomorphism
			}
			next, ok := shrinkBlock(cur, block, opts)
			if ok {
				cur = next
				shrunk = true
				break // blocks changed; recompute
			}
		}
		if !shrunk {
			return cur
		}
	}
}

// shrinkBlock searches a homomorphism h from the block into the whole
// instance such that (K \ B) ∪ h(B) has strictly fewer facts than K.
func shrinkBlock(k *rel.Instance, block hom.Block, opts hom.Options) (*rel.Instance, bool) {
	blockAtoms := make([]dep.Atom, 0, len(block.Facts))
	for _, f := range block.Facts {
		blockAtoms = append(blockAtoms, hom.FactAtom(f))
	}
	inBlock := make(map[string]bool, len(block.Facts))
	for _, f := range block.Facts {
		inBlock[f.String()] = true
	}
	var result *rel.Instance
	hom.ForEach(blockAtoms, k, nil, opts, func(b hom.Binding) bool {
		// Build the candidate image of the block under this binding.
		img := rel.NewInstance()
		for _, f := range block.Facts {
			img.AddFact(applyBinding(f, b))
		}
		// Candidate instance: everything outside the block, plus the
		// image.
		cand := rel.NewInstance()
		for _, f := range k.Facts() {
			if !inBlock[f.String()] {
				cand.AddFact(f)
			}
		}
		cand.AddAll(img)
		if cand.NumFacts() < k.NumFacts() {
			result = cand
			return false
		}
		return true
	})
	return result, result != nil
}

func applyBinding(f rel.Fact, b hom.Binding) rel.Fact {
	t := f.Args.Clone()
	for idx, v := range t {
		if v.IsNull() {
			if w, ok := b[hom.NullVar(v.NullID())]; ok {
				t[idx] = w
			}
		}
	}
	return rel.Fact{Rel: f.Rel, Args: t}
}

// IsCore reports whether the instance equals its core.
func IsCore(k *rel.Instance, opts hom.Options) bool {
	return Core(k, opts).NumFacts() == k.NumFacts()
}

// HomEquivalent reports whether there are homomorphisms in both
// directions between the two instances (identity on constants). Cores
// of hom-equivalent instances are isomorphic.
func HomEquivalent(a, b *rel.Instance, opts hom.Options) bool {
	return hom.InstanceHomExists(a, b, opts) && hom.InstanceHomExists(b, a, opts)
}

// CertainAnswers computes the certain answers of a union of conjunctive
// queries in the data-exchange fragment (Σts must be empty): by the
// classic result of Fagin et al., they are exactly the null-free
// answers of q on any universal solution — here the canonical one. This
// is the polynomial-time evaluation the paper contrasts with the
// coNP-complete PDE case; the tests cross-validate it against the
// enumeration-based evaluator of package certain.
func CertainAnswers(s *core.Setting, i, j *rel.Instance, eval func(*rel.Instance) []rel.Tuple, opts chase.Options) ([]rel.Tuple, bool, error) {
	if len(s.TS) > 0 || len(s.TSDisj) > 0 {
		return nil, false, fmt.Errorf("uni: CertainAnswers requires Σts = ∅ (the data-exchange fragment); got %d target-to-source dependencies", len(s.TS)+len(s.TSDisj))
	}
	res, err := CanonicalSolution(s, i, j, opts)
	if err != nil {
		return nil, false, err
	}
	if res.Failed {
		// No solutions: every tuple is vacuously certain; callers treat
		// the false flag as "no solution exists".
		return nil, false, nil
	}
	var out []rel.Tuple
	for _, t := range eval(res.Solution) {
		ground := true
		for _, v := range t {
			if v.IsNull() {
				ground = false
				break
			}
		}
		if ground {
			out = append(out, t)
		}
	}
	return out, true, nil
}
