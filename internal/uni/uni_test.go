package uni_test

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/certain"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
	"repro/internal/uni"
)

func TestCoreCollapsesDominatedNull(t *testing.T) {
	// {E(a,N1), E(a,b)}: N1 -> b retracts the instance to {E(a,b)}.
	k := rel.NewInstance()
	k.Add("E", rel.Const("a"), rel.Null(1))
	k.Add("E", rel.Const("a"), rel.Const("b"))
	c := uni.Core(k, hom.Options{})
	if c.NumFacts() != 1 {
		t.Fatalf("core has %d facts:\n%s", c.NumFacts(), c)
	}
	if !c.Contains(rel.Fact{Rel: "E", Args: rel.Tuple{rel.Const("a"), rel.Const("b")}}) {
		t.Errorf("core lost the ground fact:\n%s", c)
	}
}

func TestCoreKeepsEssentialNulls(t *testing.T) {
	// {E(a,N1), E(N1,b)}: no shortcut exists, the instance is its own
	// core.
	k := rel.NewInstance()
	k.Add("E", rel.Const("a"), rel.Null(1))
	k.Add("E", rel.Null(1), rel.Const("b"))
	c := uni.Core(k, hom.Options{})
	if c.NumFacts() != 2 {
		t.Fatalf("core has %d facts, want 2:\n%s", c.NumFacts(), c)
	}
	if !uni.IsCore(k, hom.Options{}) {
		t.Error("IsCore = false for a core instance")
	}
}

func TestCoreCollapsesParallelNullChains(t *testing.T) {
	// Two parallel null chains from a to b: one suffices.
	k := rel.NewInstance()
	k.Add("E", rel.Const("a"), rel.Null(1))
	k.Add("E", rel.Null(1), rel.Const("b"))
	k.Add("E", rel.Const("a"), rel.Null(2))
	k.Add("E", rel.Null(2), rel.Const("b"))
	c := uni.Core(k, hom.Options{})
	if c.NumFacts() != 2 {
		t.Fatalf("core has %d facts, want 2:\n%s", c.NumFacts(), c)
	}
}

func TestCoreGroundInstanceIsItself(t *testing.T) {
	k := rel.NewInstance()
	k.Add("E", rel.Const("a"), rel.Const("b"))
	k.Add("E", rel.Const("b"), rel.Const("c"))
	c := uni.Core(k, hom.Options{})
	if !c.Equal(k) {
		t.Error("ground instance must be its own core")
	}
}

func TestCoreIsHomEquivalentAndIdempotent(t *testing.T) {
	k := rel.NewInstance()
	k.Add("E", rel.Const("a"), rel.Null(1))
	k.Add("E", rel.Const("a"), rel.Null(2))
	k.Add("E", rel.Null(2), rel.Null(3))
	k.Add("E", rel.Const("a"), rel.Const("b"))
	k.Add("E", rel.Const("b"), rel.Const("c"))
	c := uni.Core(k, hom.Options{})
	if !uni.HomEquivalent(k, c, hom.Options{}) {
		t.Error("core not hom-equivalent to the instance")
	}
	if !uni.Core(c, hom.Options{}).Equal(c) {
		t.Error("core not idempotent")
	}
	if !uni.IsCore(c, hom.Options{}) {
		t.Error("IsCore(core) = false")
	}
	// N1 -> b, and the chain E(a,N2),E(N2,N3) -> E(a,b),E(b,c): all
	// nulls collapse.
	if c.HasNulls() {
		t.Errorf("expected a null-free core:\n%s", c)
	}
	if c.NumFacts() != 2 {
		t.Errorf("core = %d facts, want 2:\n%s", c.NumFacts(), c)
	}
}

// Property-style check: the core never grows and is always a retract
// (subset + hom-equivalent) across random instances.
func TestCoreRetractProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		k := rel.NewInstance()
		vals := []rel.Value{rel.Const("a"), rel.Const("b"), rel.Null(1), rel.Null(2), rel.Null(3)}
		for f := 0; f < 6; f++ {
			k.Add("E", vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))])
		}
		c := uni.Core(k, hom.Options{})
		if c.NumFacts() > k.NumFacts() {
			t.Fatalf("core grew: %d -> %d", k.NumFacts(), c.NumFacts())
		}
		if !k.ContainsAll(c) {
			t.Errorf("core is not a subinstance:\nK:\n%s\ncore:\n%s", k, c)
		}
		if !uni.HomEquivalent(k, c, hom.Options{}) {
			t.Errorf("core not hom-equivalent:\nK:\n%s\ncore:\n%s", k, c)
		}
		if !uni.IsCore(c, hom.Options{}) {
			t.Errorf("Core(Core(K)) != Core(K):\n%s", c)
		}
	}
}

func dataExchangeSetting() *core.Setting {
	// Σst with existentials, Σts empty, one target tgd: the
	// data-exchange fragment.
	return &core.Setting{
		Name:   "de",
		Source: rel.SchemaOf("Src", 2),
		Target: rel.SchemaOf("T", 2, "U", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("Src", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("u"))},
		}},
		T: []dep.Dependency{dep.TGD{
			Label: "t",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("u"))},
			Head:  []dep.Atom{dep.NewAtom("U", dep.Var("x"), dep.Var("x"))},
		}},
	}
}

func TestCanonicalSolutionBasics(t *testing.T) {
	s := dataExchangeSetting()
	i := rel.NewInstance()
	i.Add("Src", rel.Const("a"), rel.Const("b"))
	res, err := uni.CanonicalSolution(s, i, rel.NewInstance(), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("chase failed unexpectedly")
	}
	if !s.IsSolution(i, rel.NewInstance(), res.Solution) {
		t.Errorf("canonical instance is not a solution:\n%s", res.Solution)
	}
	if res.Solution.Relation("U") == nil {
		t.Error("target tgd not chased")
	}
}

func TestCanonicalSolutionFailure(t *testing.T) {
	s := &core.Setting{
		Name:   "fail",
		Source: rel.SchemaOf("Src", 2),
		Target: rel.SchemaOf("T", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("Src", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
		}},
		T: []dep.Dependency{dep.EGD{
			Label: "key",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y")), dep.NewAtom("T", dep.Var("x"), dep.Var("z"))},
			Left:  "y", Right: "z",
		}},
	}
	i := rel.NewInstance()
	i.Add("Src", rel.Const("a"), rel.Const("b"))
	i.Add("Src", rel.Const("a"), rel.Const("c"))
	res, err := uni.CanonicalSolution(s, i, rel.NewInstance(), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Error("expected failing chase (key violation)")
	}
}

// TestCertainViaUniversalAgainstEnumeration cross-validates the
// polynomial universal-solution evaluation against the enumeration
// evaluator on data-exchange settings.
func TestCertainViaUniversalAgainstEnumeration(t *testing.T) {
	s := dataExchangeSetting()
	q := certain.UCQ{{
		Name: "q",
		Head: []string{"x"},
		Body: []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("u"))},
	}}
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		i := rel.NewInstance()
		for f := 0; f < 1+rng.Intn(4); f++ {
			i.Add("Src", rel.Const(string(rune('a'+rng.Intn(3)))), rel.Const(string(rune('a'+rng.Intn(3)))))
		}
		fast, exists, err := uni.CertainAnswers(s, i, rel.NewInstance(), func(inst *rel.Instance) []rel.Tuple {
			return q.Eval(inst, hom.Options{})
		}, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !exists {
			t.Fatal("data-exchange setting must have solutions")
		}
		slow, err := certain.Answers(s, i, rel.NewInstance(), q, certain.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(fast) != len(slow.Answers) {
			t.Fatalf("trial %d: universal=%v enumeration=%v", trial, fast, slow.Answers)
		}
		for idx := range fast {
			if fast[idx].String() != slow.Answers[idx].String() {
				t.Fatalf("trial %d: universal=%v enumeration=%v", trial, fast, slow.Answers)
			}
		}
	}
}

func TestCertainViaUniversalRejectsPDESettings(t *testing.T) {
	s := dataExchangeSetting()
	s.TS = []dep.TGD{{
		Label: "ts",
		Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
		Head:  []dep.Atom{dep.NewAtom("Src", dep.Var("x"), dep.Var("y"))},
	}}
	_, _, err := uni.CertainAnswers(s, rel.NewInstance(), rel.NewInstance(), func(*rel.Instance) []rel.Tuple { return nil }, chase.Options{})
	if err == nil {
		t.Error("Σts setting accepted by the data-exchange evaluator")
	}
}

// TestCoreOfCanonicalIsUniversalSolution: the core of the canonical
// universal solution is still a solution and hom-equivalent to it (the
// "getting to the core" headline).
func TestCoreOfCanonicalIsUniversalSolution(t *testing.T) {
	s := dataExchangeSetting()
	i := rel.NewInstance()
	i.Add("Src", rel.Const("a"), rel.Const("b"))
	i.Add("Src", rel.Const("a"), rel.Const("c")) // two triggers, same x
	res, err := uni.CanonicalSolution(s, i, rel.NewInstance(), chase.Options{})
	if err != nil || res.Failed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	c := uni.Core(res.Solution, hom.Options{})
	if c.NumFacts() > res.Solution.NumFacts() {
		t.Fatal("core grew")
	}
	if !s.IsSolution(i, rel.NewInstance(), c) {
		t.Errorf("core is not a solution:\n%s", c)
	}
	if !uni.HomEquivalent(c, res.Solution, hom.Options{}) {
		t.Error("core not hom-equivalent to the canonical solution")
	}
	// The canonical solution has two T-facts with distinct nulls for the
	// same x='a'; the core keeps only one.
	if c.Relation("T").Len() != 1 {
		t.Errorf("core T relation:\n%s", c)
	}
}

// TestCoreAcrossRelations: a block whose image lands in a different
// part of the instance, spanning multiple relations.
func TestCoreAcrossRelations(t *testing.T) {
	k := rel.NewInstance()
	// Redundant pattern: L(a,N1), R(N1,b) has the ground witness
	// L(a,c), R(c,b).
	k.Add("L", rel.Const("a"), rel.Null(1))
	k.Add("R", rel.Null(1), rel.Const("b"))
	k.Add("L", rel.Const("a"), rel.Const("c"))
	k.Add("R", rel.Const("c"), rel.Const("b"))
	c := uni.Core(k, hom.Options{})
	if c.NumFacts() != 2 || c.HasNulls() {
		t.Errorf("core = %d facts (nulls=%v):\n%s", c.NumFacts(), c.HasNulls(), c)
	}
}

// TestCoreChainedBlocks: shrinking one block can expose further
// shrinking (the loop must iterate to a fixpoint).
func TestCoreChainedBlocks(t *testing.T) {
	k := rel.NewInstance()
	k.Add("E", rel.Const("a"), rel.Null(1))
	k.Add("E", rel.Const("a"), rel.Null(2))
	k.Add("E", rel.Null(2), rel.Null(3))
	k.Add("E", rel.Const("a"), rel.Const("x"))
	k.Add("E", rel.Const("x"), rel.Const("y"))
	c := uni.Core(k, hom.Options{})
	if !uni.IsCore(c, hom.Options{}) {
		t.Fatal("fixpoint not reached")
	}
	if c.NumFacts() != 2 {
		t.Errorf("core = %d facts, want the 2 ground facts:\n%s", c.NumFacts(), c)
	}
}

func TestCoreCanceledContextReturnsEarly(t *testing.T) {
	// A pre-canceled context must stop the shrink fixpoint before the
	// first round: Core returns the (cloned) input untouched, and the
	// caller contract is to check Ctx.Err and discard it.
	k := rel.NewInstance()
	k.Add("E", rel.Const("a"), rel.Null(1))
	k.Add("E", rel.Const("a"), rel.Const("b"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := uni.Core(k, hom.Options{Ctx: ctx})
	if ctx.Err() == nil {
		t.Fatal("context should be canceled")
	}
	if c.NumFacts() != k.NumFacts() {
		t.Errorf("canceled Core still shrank the instance: %d -> %d facts", k.NumFacts(), c.NumFacts())
	}
	// The input itself must not have been mutated.
	if k.NumFacts() != 2 {
		t.Errorf("input mutated: %d facts", k.NumFacts())
	}
}
