// Package cluster implements the consistent-hash ring that shards the
// pdxd chase cache across a static fleet of daemons. Membership is a
// fixed peer list known at startup; liveness toggles members in and out
// of the placement ring without changing the list. Placement is fully
// deterministic — every point on the ring is a sha256 of a member URL
// and a virtual-node index, and keys hash with sha256 too — so every
// shard that sees the same live set computes the same owner for every
// key, with no coordination and no randomness.
//
// The unit of placement is the chase-cache identity already used by
// internal/server: the (setting-hash, source-instance-hash,
// target-instance-hash) triple, combined by Key. Both cache kinds
// (tractable and generic) of a pair land on the same owner, so one
// shard holds everything there is to know about a pair.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// DefaultVNodes is the virtual-node count per member when a Ring is
// built with vnodes <= 0. 64 points per member keeps the expected
// relocation on a membership change within a few percent of the ideal
// 1/N while the full 3-shard ring still sorts in microseconds.
const DefaultVNodes = 64

// Key combines a chase-cache identity into the ring placement key. The
// IDs are content hashes ("sha256:<hex>"), so '\x00' never occurs
// inside a component and the combination is injective.
func Key(settingID, srcID, tgtID string) string {
	return settingID + "\x00" + srcID + "\x00" + tgtID
}

// Member is one shard in the ring's static membership.
type Member struct {
	// URL is the member's base URL (its identity on the ring).
	URL string
	// Alive reports whether the member currently takes placements.
	Alive bool
	// Self marks the member the local daemon advertises as itself.
	Self bool
}

// point is one virtual node: a position on the hash circle owned by a
// member.
type point struct {
	hash uint64
	url  string
}

// Ring is the consistent-hash ring. It is safe for concurrent use; the
// placement points are rebuilt under the lock whenever liveness
// changes, so Owner is a read-locked binary search.
type Ring struct {
	self   string
	vnodes int

	mu      sync.RWMutex
	urls    []string // static membership, sorted, deduplicated
	alive   map[string]bool
	points  []point // live members' virtual nodes, sorted by hash
	version uint64  // bumped on every placement change
}

// New builds a ring for the static membership peers ∪ {self}. self
// starts alive; every other peer starts dead and joins the placement
// when SetAlive marks it up (the health monitor's first probe round),
// so a shard booting alone never places keys on peers it has not seen
// respond. vnodes <= 0 means DefaultVNodes.
func New(self string, peers []string, vnodes int) (*Ring, error) {
	if self == "" {
		return nil, fmt.Errorf("cluster: self URL is empty")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{self: true}
	urls := []string{self}
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer URL in list")
		}
		if !seen[p] {
			seen[p] = true
			urls = append(urls, p)
		}
	}
	sort.Strings(urls)
	r := &Ring{
		self:   self,
		vnodes: vnodes,
		urls:   urls,
		alive:  map[string]bool{self: true},
	}
	r.rebuildLocked()
	return r, nil
}

// Self returns the local member's URL.
func (r *Ring) Self() string { return r.self }

// Size returns the static membership size (alive or not).
func (r *Ring) Size() int { return len(r.urls) }

// Version returns the placement version, bumped on every liveness
// change. Callers cache it to detect ring changes cheaply.
func (r *Ring) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// Alive reports whether a member currently takes placements. Unknown
// URLs are never alive.
func (r *Ring) Alive(url string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.alive[url]
}

// AliveCount returns the number of live members (self included).
func (r *Ring) AliveCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, url := range r.urls {
		if r.alive[url] {
			n++
		}
	}
	return n
}

// SetAlive marks a member up or down, reporting whether the placement
// changed. The local member cannot be marked dead (a shard always
// places its own keys), and URLs outside the static membership are
// ignored.
func (r *Ring) SetAlive(url string, alive bool) (changed bool) {
	if url == r.self && !alive {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	member := false
	for _, u := range r.urls {
		if u == url {
			member = true
			break
		}
	}
	if !member || r.alive[url] == alive {
		return false
	}
	r.alive[url] = alive
	r.rebuildLocked()
	return true
}

// Members returns the static membership with liveness, sorted by URL.
func (r *Ring) Members() []Member {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Member, 0, len(r.urls))
	for _, url := range r.urls {
		out = append(out, Member{URL: url, Alive: r.alive[url], Self: url == r.self})
	}
	return out
}

// Owner returns the live member that owns key: the first virtual node
// clockwise from the key's hash. With a single live member (the boot
// state) every key is owned by self.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	// points is never empty: self is always alive.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].url
}

// OwnedBySelf reports whether the local member owns key.
func (r *Ring) OwnedBySelf(key string) bool { return r.Owner(key) == r.self }

// rebuildLocked regenerates the placement points from the live set.
// Ties on hash values (astronomically unlikely with sha256, but the
// sort must still be total) break by URL, keeping the order — and
// therefore ownership — identical on every shard.
func (r *Ring) rebuildLocked() {
	r.points = r.points[:0]
	for _, url := range r.urls {
		if !r.alive[url] {
			continue
		}
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(url + "#" + strconv.Itoa(v)), url: url})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].url < r.points[j].url
	})
	r.version++
}

// hash64 maps a string onto the ring circle: the first eight bytes of
// its sha256, big-endian. sha256 keeps placement identical across
// processes, architectures, and Go versions — the property the
// cross-shard ownership agreement rests on.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
