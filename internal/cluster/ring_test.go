package cluster

import (
	"fmt"
	"testing"
)

// testPeers builds a fleet of n shard URLs.
func testPeers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8642", i+1)
	}
	return out
}

// testKeys builds n synthetic cache-identity keys.
func testKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = Key(
			fmt.Sprintf("sha256:setting%d", i%7),
			fmt.Sprintf("sha256:src%d", i),
			"sha256:empty")
	}
	return out
}

// TestPlacementDeterministic: two rings built from the same membership
// — handed the peer list in different orders, from different "self"
// members — agree on the owner of every key. This is the property every
// shard's routing decision rests on: no coordination, same answer.
func TestPlacementDeterministic(t *testing.T) {
	peers := testPeers(5)
	a, err := New(peers[0], peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	reversed := make([]string, len(peers))
	for i, p := range peers {
		reversed[len(peers)-1-i] = p
	}
	b, err := New(peers[3], reversed, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Ring{a, b} {
		for _, p := range peers {
			r.SetAlive(p, true)
		}
	}
	for _, k := range testKeys(2000) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("rings disagree on %q: %q vs %q", k, ao, bo)
		}
	}
}

// TestPlacementGolden pins concrete owners, so a change to the hash
// function or point layout — which would silently split ownership
// between old and new binaries during a rolling restart — fails loudly.
// The values are what sha256-based placement produces; regenerate them
// deliberately if the placement scheme ever changes on purpose (that is
// a wire-format-level event for a mixed-version fleet).
func TestPlacementGolden(t *testing.T) {
	peers := testPeers(3)
	r, err := New(peers[0], peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		r.SetAlive(p, true)
	}
	got := make(map[string]int)
	for _, k := range testKeys(999) {
		got[r.Owner(k)]++
	}
	want := map[string]int{
		"http://10.0.0.1:8642": 335,
		"http://10.0.0.2:8642": 329,
		"http://10.0.0.3:8642": 335,
	}
	for url, n := range want {
		if got[url] != n {
			t.Fatalf("owner distribution changed: got %v, want %v", got, want)
		}
	}
}

// TestSingleOwner: every key has exactly one owner, the owner is a live
// member, and dead members never own anything.
func TestSingleOwner(t *testing.T) {
	peers := testPeers(4)
	r, err := New(peers[0], peers, 32)
	if err != nil {
		t.Fatal(err)
	}
	r.SetAlive(peers[1], true)
	r.SetAlive(peers[2], true)
	// peers[3] stays dead.
	live := map[string]bool{peers[0]: true, peers[1]: true, peers[2]: true}
	for _, k := range testKeys(1000) {
		o := r.Owner(k)
		if !live[o] {
			t.Fatalf("key %q owned by non-live member %q", k, o)
		}
		if again := r.Owner(k); again != o {
			t.Fatalf("owner of %q not stable: %q then %q", k, o, again)
		}
	}
}

// TestRemovalRelocatesOnlyOwnedKeys is the consistent-hashing contract:
// marking one of N members dead relocates exactly the keys that member
// owned — every other key keeps its owner — and the relocated fraction
// is about 1/N (bounded well away from the 100% a mod-N scheme pays).
func TestRemovalRelocatesOnlyOwnedKeys(t *testing.T) {
	const n = 4
	peers := testPeers(n)
	keys := testKeys(4000)
	for _, victim := range []int{1, 2, 3} { // 0 is self, which cannot die
		r, err := New(peers[0], peers, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range peers {
			r.SetAlive(p, true)
		}
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k] = r.Owner(k)
		}
		if !r.SetAlive(peers[victim], false) {
			t.Fatalf("marking %q dead changed nothing", peers[victim])
		}
		moved := 0
		for _, k := range keys {
			after := r.Owner(k)
			if after == before[k] {
				continue
			}
			if before[k] != peers[victim] {
				t.Fatalf("key %q moved %q -> %q although %q died", k, before[k], after, peers[victim])
			}
			if after == peers[victim] {
				t.Fatalf("key %q relocated onto the dead member", k)
			}
			moved++
		}
		owned := 0
		for _, o := range before {
			if o == peers[victim] {
				owned++
			}
		}
		if moved != owned {
			t.Fatalf("victim %d: %d keys moved but victim owned %d", victim, moved, owned)
		}
		// The ideal share is 1/4; with 64 vnodes the realized share
		// stays within a generous band around it.
		frac := float64(moved) / float64(len(keys))
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("victim %d: relocated fraction %.3f outside [0.10, 0.45] (ideal %.3f)", victim, frac, 1.0/n)
		}
		// Revival restores the exact original placement.
		if !r.SetAlive(peers[victim], true) {
			t.Fatalf("reviving %q changed nothing", peers[victim])
		}
		for _, k := range keys {
			if r.Owner(k) != before[k] {
				t.Fatalf("revival did not restore owner of %q", k)
			}
		}
	}
}

// TestRingBasics covers the membership and liveness edges: self always
// alive, duplicate peers deduplicated, unknown URLs ignored, versions
// bumped only on real changes.
func TestRingBasics(t *testing.T) {
	peers := testPeers(3)
	r, err := New(peers[0], append([]string{peers[0]}, peers...), 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 3 {
		t.Fatalf("size %d after dedupe, want 3", r.Size())
	}
	if !r.Alive(peers[0]) || r.AliveCount() != 1 {
		t.Fatalf("self not alive at boot: %+v", r.Members())
	}
	if r.SetAlive(peers[0], false) {
		t.Fatal("self was marked dead")
	}
	if r.SetAlive("http://unknown:1", true) {
		t.Fatal("unknown URL joined the ring")
	}
	v := r.Version()
	if !r.SetAlive(peers[1], true) {
		t.Fatal("liveness change not reported")
	}
	if r.SetAlive(peers[1], true) {
		t.Fatal("no-op liveness change reported")
	}
	if r.Version() != v+1 {
		t.Fatalf("version %d after one change from %d", r.Version(), v)
	}
	members := r.Members()
	if len(members) != 3 || !members[0].Self || !members[0].Alive || !members[1].Alive || members[2].Alive {
		t.Fatalf("unexpected members: %+v", members)
	}
	if _, err := New("", peers, 8); err == nil {
		t.Fatal("empty self accepted")
	}
	if _, err := New(peers[0], []string{""}, 8); err == nil {
		t.Fatal("empty peer accepted")
	}
	key := Key("sha256:s", "sha256:i", "sha256:j")
	if o := r.Owner(key); !r.Alive(o) {
		t.Fatalf("owner %q not alive", o)
	}
	if r.OwnedBySelf(key) != (r.Owner(key) == peers[0]) {
		t.Fatal("OwnedBySelf disagrees with Owner")
	}
}
